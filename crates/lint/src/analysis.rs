//! Structural analysis over the token stream.
//!
//! A single forward pass reconstructs just enough structure for the rules: brace-scope
//! nesting with the enclosing `impl` type and function name, `#[cfg(test)]` / `#[test]`
//! spans, `#[derive(...)]` lists per type, which types define `fn validate`, and the
//! `// pliant-lint: allow(rule)` suppression pragmas.

use std::collections::{BTreeMap, BTreeSet};

use crate::tokenizer::{tokenize, Lexed, Token, TokenKind};

/// Context attached to every token by the structural pass.
#[derive(Debug, Clone, Default)]
pub struct TokenContext {
    /// Index into [`FileAnalysis::functions`] of the innermost enclosing function.
    pub function: Option<usize>,
    /// Whether the token is inside `#[cfg(test)]` or a `#[test]` function.
    pub in_test: bool,
}

/// One function item encountered in the file.
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    /// Bare function name (`step`).
    pub name: String,
    /// Name qualified by the enclosing `impl` type when there is one
    /// (`ClusterNode::step`), otherwise the bare name.
    pub qualified: String,
}

/// A `#[derive(...)]`-annotated type.
#[derive(Debug, Clone)]
pub struct DeriveInfo {
    /// The struct/enum name.
    pub type_name: String,
    /// 1-based line of the `derive` attribute.
    pub line: u32,
    /// The derived trait names.
    pub traits: Vec<String>,
    /// Whether the item sits inside test code.
    pub in_test: bool,
}

/// Everything the rules need to know about one source file.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Path as reported in diagnostics (relative to the scan root).
    pub rel_path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Per-token context, parallel to `tokens`.
    pub context: Vec<TokenContext>,
    /// All function items, indexed by [`TokenContext::function`].
    pub functions: Vec<FunctionInfo>,
    /// All derived types.
    pub derives: Vec<DeriveInfo>,
    /// Type names that define `fn validate` in an `impl` block in this file.
    pub validate_types: BTreeSet<String>,
    /// Lines suppressed per rule by `// pliant-lint: allow(rule)` pragmas.
    pub suppressed: BTreeMap<String, BTreeSet<u32>>,
}

impl FileAnalysis {
    /// Whether a finding of `rule` at `line` is suppressed by a pragma.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressed
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Tokenizes and structurally analyzes one file.
pub fn analyze(rel_path: &str, source: &str) -> FileAnalysis {
    let Lexed { tokens, comments } = tokenize(source);

    let mut analysis = FileAnalysis {
        rel_path: rel_path.to_string(),
        context: Vec::with_capacity(tokens.len()),
        functions: Vec::new(),
        derives: Vec::new(),
        validate_types: BTreeSet::new(),
        suppressed: BTreeMap::new(),
        tokens: Vec::new(),
    };

    // --- Suppression pragmas -------------------------------------------------------
    // `// pliant-lint: allow(rule-a, rule-b) <justification>` suppresses findings of the
    // named rules on the pragma's own line (trailing form) or, for a standalone comment
    // line, on the next line that carries a token.
    for comment in &comments {
        let Some(rules) = parse_pragma(&comment.text) else {
            continue;
        };
        let trailing = tokens.iter().any(|t| t.line == comment.line);
        let mut lines = BTreeSet::new();
        lines.insert(comment.line);
        if !trailing {
            if let Some(next) = tokens.iter().map(|t| t.line).find(|&l| l > comment.line) {
                lines.insert(next);
            }
        }
        for rule in rules {
            analysis
                .suppressed
                .entry(rule)
                .or_default()
                .extend(lines.iter().copied());
        }
    }

    // --- Structural pass -----------------------------------------------------------
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::default();
    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        let in_test_now =
            |scopes: &[Scope], pending: &Pending| scopes.iter().any(|s| s.test) || pending.test;

        match tok.kind {
            TokenKind::Punct if tok.is_punct('#') => {
                // Attribute: `#[...]` (outer) or `#![...]` (inner, ignored).
                let inner = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
                let open = i + if inner { 2 } else { 1 };
                if tokens.get(open).is_some_and(|t| t.is_punct('[')) {
                    let close = matching_bracket(&tokens, open, '[', ']');
                    if !inner {
                        pending.absorb_attribute(&tokens[open + 1..close], tok.line);
                    }
                    // Tokens of the attribute carry the current context.
                    let ctx = TokenContext {
                        function: scopes.iter().rev().find_map(|s| s.function),
                        in_test: in_test_now(&scopes, &pending),
                    };
                    for _ in i..=close.min(tokens.len().saturating_sub(1)) {
                        analysis.context.push(ctx.clone());
                    }
                    i = close + 1;
                    continue;
                }
            }
            TokenKind::Ident => match tok.text.as_str() {
                "mod" => {
                    pending.item = Some(PendingItem::Mod);
                }
                "impl" => {
                    let (type_name, _) = impl_type_name(&tokens, i);
                    pending.item = Some(PendingItem::Impl(type_name));
                }
                "fn" => {
                    let name = tokens
                        .get(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    if name == "validate" {
                        if let Some(ty) = scopes.iter().rev().find_map(|s| s.impl_type.clone()) {
                            analysis.validate_types.insert(ty);
                        }
                    }
                    pending.item = Some(PendingItem::Fn(name));
                }
                "struct" | "enum" | "union" | "trait" => {
                    let name = tokens
                        .get(i + 1)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    if let Some((traits, line)) = pending.derives.take() {
                        if !name.is_empty() {
                            analysis.derives.push(DeriveInfo {
                                type_name: name.clone(),
                                line,
                                traits,
                                in_test: in_test_now(&scopes, &pending),
                            });
                        }
                    }
                    pending.item = Some(PendingItem::Other);
                }
                _ => {}
            },
            TokenKind::Punct if tok.is_punct('{') => {
                let test = scopes.iter().any(|s| s.test) || pending.test;
                let scope = match pending.item.take() {
                    Some(PendingItem::Fn(name)) => {
                        let qualified = match scopes.iter().rev().find_map(|s| s.impl_type.clone())
                        {
                            Some(ty) => format!("{ty}::{name}"),
                            None => name.clone(),
                        };
                        analysis.functions.push(FunctionInfo { name, qualified });
                        Scope {
                            function: Some(analysis.functions.len() - 1),
                            impl_type: None,
                            test,
                        }
                    }
                    Some(PendingItem::Impl(ty)) => Scope {
                        function: None,
                        impl_type: Some(ty),
                        test,
                    },
                    Some(PendingItem::Mod) | Some(PendingItem::Other) | None => Scope {
                        function: None,
                        impl_type: None,
                        test,
                    },
                };
                pending.test = false;
                pending.derives = None;
                scopes.push(scope);
            }
            TokenKind::Punct if tok.is_punct('}') => {
                scopes.pop();
            }
            TokenKind::Punct if tok.is_punct(';') => {
                // `mod name;`, `use ...;`, trait method declarations: the pending item
                // and attributes never materialize into a scope.
                pending.item = None;
                pending.test = false;
                pending.derives = None;
            }
            _ => {}
        }

        analysis.context.push(TokenContext {
            function: scopes.iter().rev().find_map(|s| s.function),
            in_test: scopes.iter().any(|s| s.test)
                || (pending.test && matches!(pending.item, Some(PendingItem::Fn(_)))),
        });
        i += 1;
    }

    analysis.tokens = tokens;
    debug_assert_eq!(analysis.tokens.len(), analysis.context.len());
    analysis
}

#[derive(Debug)]
struct Scope {
    function: Option<usize>,
    impl_type: Option<String>,
    test: bool,
}

#[derive(Debug, Default)]
struct Pending {
    item: Option<PendingItem>,
    /// `#[cfg(test)]` or `#[test]` seen and not yet attached to an item.
    test: bool,
    /// `#[derive(...)]` traits and attribute line, not yet attached to a type.
    derives: Option<(Vec<String>, u32)>,
}

impl Pending {
    /// Inspects one outer attribute's tokens (the slice between `[` and `]`).
    fn absorb_attribute(&mut self, body: &[Token], line: u32) {
        let idents: Vec<&str> = body
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        match idents.as_slice() {
            // Exactly `#[cfg(test)]` / `#[test]`; `#[cfg(not(test))]` must not match.
            ["cfg", "test"] | ["test"] => self.test = true,
            [first, rest @ ..] if *first == "derive" => {
                let traits = rest.iter().map(|s| s.to_string()).collect();
                self.derives = Some((traits, line));
            }
            _ => {}
        }
    }
}

#[derive(Debug)]
enum PendingItem {
    Fn(String),
    Impl(String),
    Mod,
    Other,
}

/// Index of the bracket matching `tokens[open]` (which must be `open_c`), or the last
/// token index if unbalanced.
fn matching_bracket(tokens: &[Token], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Resolves the self type of an `impl` at token index `i` (pointing at `impl`): the last
/// path-segment identifier at angle-depth 0 before the opening brace, taken after `for`
/// when present (`impl<T> Trait<T> for Type<T> { .. }` -> `Type`).
fn impl_type_name(tokens: &[Token], i: usize) -> (String, usize) {
    let mut angle_depth = 0i32;
    let mut last_ident: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        match t.kind {
            TokenKind::Punct => match t.text.as_bytes() {
                b"<" => angle_depth += 1,
                b">" => angle_depth -= 1,
                b"{" | b";" => break,
                _ => {}
            },
            TokenKind::Ident if angle_depth == 0 => match t.text.as_str() {
                "for" => after_for = None,
                "where" => break,
                name => {
                    last_ident = Some(name);
                    if tokens[i + 1..j]
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text == "for")
                    {
                        after_for = Some(name);
                    }
                }
            },
            _ => {}
        }
        j += 1;
    }
    let name = after_for.or(last_ident).unwrap_or_default().to_string();
    (name, j)
}

/// Parses `pliant-lint: allow(rule-a, rule-b)` out of a comment, returning the rule
/// names, or `None` if the comment is not a pragma.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("pliant-lint:")?;
    let rest = comment[idx + "pliant-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let end = rest.find(')')?;
    let rules: Vec<String> = rest[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_context_is_qualified_by_impl_type() {
        let src = "
            impl ClusterNode {
                pub fn step(&mut self) { let x = compute(); }
            }
            fn free_standing() {}
        ";
        let a = analyze("x.rs", src);
        assert_eq!(a.functions.len(), 2);
        assert_eq!(a.functions[0].qualified, "ClusterNode::step");
        assert_eq!(a.functions[1].qualified, "free_standing");
        // The `compute` token sits inside ClusterNode::step.
        let idx = a.tokens.iter().position(|t| t.is_ident("compute")).unwrap();
        assert_eq!(a.context[idx].function, Some(0));
    }

    #[test]
    fn trait_impls_resolve_the_self_type() {
        let src = "impl<T: Clone> serde::Deserialize for Wrapper<T> { fn from_value() {} }";
        let a = analyze("x.rs", src);
        assert_eq!(a.functions[0].qualified, "Wrapper::from_value");
    }

    #[test]
    fn cfg_test_marks_the_whole_module() {
        let src = "
            fn lib_code() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
        ";
        let a = analyze("x.rs", src);
        let unwraps: Vec<bool> = a
            .tokens
            .iter()
            .zip(&a.context)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, c)| c.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }";
        let a = analyze("x.rs", src);
        assert!(a.context.iter().all(|c| !c.in_test));
    }

    #[test]
    fn test_attribute_marks_only_that_function() {
        let src = "
            #[test]
            fn a_test() { x.unwrap(); }
            fn lib_code() { y.unwrap(); }
        ";
        let a = analyze("x.rs", src);
        let unwraps: Vec<bool> = a
            .tokens
            .iter()
            .zip(&a.context)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, c)| c.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn derives_and_validate_types_are_collected() {
        let src = "
            #[derive(Debug, Serialize, Deserialize)]
            pub struct Config { x: f64 }
            impl Config {
                pub fn validate(&self) -> bool { true }
            }
            #[derive(Serialize)]
            struct Plain;
        ";
        let a = analyze("x.rs", src);
        assert_eq!(a.derives.len(), 2);
        assert_eq!(a.derives[0].type_name, "Config");
        assert!(a.derives[0].traits.iter().any(|t| t == "Deserialize"));
        assert_eq!(a.derives[0].line, 2);
        assert!(a.validate_types.contains("Config"));
        assert!(!a.validate_types.contains("Plain"));
    }

    #[test]
    fn pragma_trailing_and_standalone() {
        let src = "
            let a = x.unwrap(); // pliant-lint: allow(panic-hygiene) poisoned lock
            // pliant-lint: allow(nan-unsafe-cmp, panic-hygiene): finite by invariant
            let b = y.unwrap();
            let c = z.unwrap();
        ";
        let a = analyze("x.rs", src);
        assert!(a.is_suppressed("panic-hygiene", 2));
        assert!(a.is_suppressed("panic-hygiene", 4));
        assert!(a.is_suppressed("nan-unsafe-cmp", 4));
        assert!(!a.is_suppressed("panic-hygiene", 5));
    }
}
