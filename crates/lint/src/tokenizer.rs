//! A small, self-contained Rust lexer.
//!
//! The lint rules only need a token stream with line numbers plus the comment text (for
//! suppression pragmas), so this lexer is deliberately minimal: it distinguishes
//! identifiers, punctuation, literals, and lifetimes, and it is exact about the things
//! that would otherwise produce false positives — nested block comments, raw/byte
//! strings, char literals vs. lifetimes, and doc comments (which are comments here, so a
//! comment *mentioning* `partial_cmp(..).unwrap()` never trips a rule).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `partial_cmp`, `Vec`, ...).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String literal (regular, raw, or byte; contents are not inspected by any rule).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokenKind,
    /// The lexeme text (for `Punct`, a single character).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// One comment (line or block, including doc comments) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Unterminated constructs (running off the end of
/// the file inside a string or block comment) terminate the affected token at EOF rather
/// than failing: the linter must degrade gracefully on code rustc would reject anyway.
pub fn tokenize(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    /// Consumes a `"..."` string body (the opening quote not yet consumed).
    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    /// Consumes a raw string `r"..."` / `r#"..."#` (pointer on the first `#` or quote).
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'body: while let Some(c) = self.bump() {
            if c == '"' {
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        continue 'body;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, String::new(), line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a`, `'static`, `'_` are lifetimes unless the identifier is immediately
        // followed by a closing quote (`'a'` is a char literal).
        let first = self.peek(1);
        if matches!(first, Some(c) if c.is_alphabetic() || c == '_') {
            let mut end = 2;
            while matches!(self.peek(end), Some(c) if c.is_alphanumeric() || c == '_') {
                end += 1;
            }
            if self.peek(end) != Some('\'') {
                let text: String = self.chars[self.pos + 1..self.pos + end].iter().collect();
                for _ in 0..end {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, text, line);
                return;
            }
        }
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Char, String::new(), line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not (the `.` starts a range).
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Raw/byte literal prefixes: r"..", r#"..", b"..", br#"..", b'_'.
        let next = self.peek(0);
        match (text.as_str(), next) {
            ("r" | "br", Some('"' | '#')) if self.raw_prefix_is_string() => self.raw_string(line),
            ("b", Some('"')) => self.string(line),
            ("b", Some('\'')) => {
                self.bump(); // opening quote
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokenKind::Char, String::new(), line);
            }
            _ => self.push(TokenKind::Ident, text, line),
        }
    }

    /// After an `r`/`br` prefix, checks that `#`* is followed by a quote (so `r#keyword`
    /// raw identifiers are not mistaken for raw strings).
    fn raw_prefix_is_string(&self) -> bool {
        let mut ahead = 0;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
        }
        self.peek(ahead) == Some('"')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = tokenize("// partial_cmp(..).unwrap()\nlet x = 1; /* vec![] */\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.tokens.iter().all(|t| t.text != "partial_cmp"));
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = tokenize("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents("/* /* */ unwrap */ ok"), vec!["ok"]);
        // The token after a multi-line block comment is on the right line.
        let lexed = tokenize("/* a\nb\nc */ fn f() {}");
        assert_eq!(lexed.tokens[0].line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        assert_eq!(idents(r#"let s = "unwrap() \" vec![";"#), vec!["let", "s"]);
        assert_eq!(
            idents(r##"let s = r#"unwrap() " quote"# ;"##),
            vec!["let", "s"]
        );
        assert_eq!(idents(r#"let b = b"unwrap()";"#), vec!["let", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(lifetimes[0].text, "a");
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        // Escaped quote inside a char literal.
        assert_eq!(idents(r"let c = '\''; done"), vec!["let", "c", "done"]);
        // 'static is a lifetime even at a type boundary.
        let lexed = tokenize("fn f() -> &'static str { \"\" }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = tokenize("for i in 0..n { let x = 1.5e-3; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert!(nums.contains(&"0".to_string()));
        assert!(nums.contains(&"1.5e".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let lexed = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
