//! `pliant-lint` — self-hosted static analysis for the Pliant workspace.
//!
//! Every rule mechanizes a correctness invariant this repository has already shipped a
//! bug against and fixed reactively:
//!
//! * [`findings::rules::NAN_UNSAFE_CMP`] — `partial_cmp(..).unwrap()` float sorts that
//!   panic on NaN (fixed reactively in PR 4 and PR 5, still live in three minebench
//!   kernels when this tool was introduced).
//! * [`findings::rules::HOT_PATH_ALLOC`] — allocations inside the per-interval hot path
//!   that PR 4 made allocation-free for a 2.2-3x speedup.
//! * [`findings::rules::NONDETERMINISM`] — wall-clock reads and hash-ordered iteration,
//!   which threaten the serial==parallel byte-identity guarantee.
//! * [`findings::rules::VALIDATE_BYPASS`] — serde-derived `Deserialize` on types with a
//!   `validate()` method (the PR 5 `InterferenceModel`/`PowerModel` bug).
//! * [`findings::rules::PANIC_HYGIENE`] — `unwrap()`/`expect()` in non-test library code
//!   of the simulation crates.
//!
//! The tool is dependency-free (std only) with its own small Rust lexer — consistent
//! with the workspace's offline compat-shim environment — and deny-by-default:
//! violations either get fixed or carry an explicit
//! `// pliant-lint: allow(<rule>) <justification>` pragma.
//!
//! # Example
//!
//! ```
//! use pliant_lint::{config::LintConfig, lint_source};
//!
//! let findings = lint_source(
//!     "crates/sim/src/example.rs",
//!     "fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
//!     &LintConfig::repo_default(),
//! );
//! assert_eq!(findings.len(), 2); // nan-unsafe-cmp + panic-hygiene
//! assert_eq!(findings[0].rule, "nan-unsafe-cmp");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod config;
pub mod findings;
pub mod rules;
pub mod tokenizer;

use std::io;
use std::path::{Path, PathBuf};

use config::LintConfig;
use findings::Finding;

/// Lints one in-memory source file. `rel_path` is the diagnostic path and drives the
/// path-scoped rules.
pub fn lint_source(rel_path: &str, source: &str, cfg: &LintConfig) -> Vec<Finding> {
    let analysis = analysis::analyze(rel_path, source);
    rules::run_rules(&analysis, cfg)
}

/// Recursively collects the `.rs` files under `root` (or `root` itself if it is a
/// file), skipping [`LintConfig::skip_dirs`], in sorted order so output and exit codes
/// are deterministic.
pub fn collect_rs_files(root: &Path, cfg: &LintConfig) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if root.is_file() {
        files.push(root.to_path_buf());
        return Ok(files);
    }
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if !cfg.skip_dirs.iter().any(|d| d == name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every `.rs` file under `root`. Diagnostic paths are reported relative to
/// `root`, so path-scoped rules expect `root` to be the workspace root.
pub fn lint_path(root: &Path, cfg: &LintConfig) -> io::Result<Vec<Finding>> {
    let mut all = Vec::new();
    for file in collect_rs_files(root, cfg)? {
        let rel = diagnostic_path(root, &file);
        let source = std::fs::read_to_string(&file)?;
        all.extend(lint_source(&rel, &source, cfg));
    }
    Ok(all)
}

/// The `/`-separated path of `file` relative to `root` (or `file` itself when it is not
/// under `root`), with any leading `./` stripped.
fn diagnostic_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let joined = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    joined.strip_prefix("./").unwrap_or(&joined).to_string()
}
