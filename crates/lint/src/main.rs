//! CLI for `pliant-lint`.
//!
//! ```text
//! pliant-lint [OPTIONS] [PATH...]
//!
//! Options:
//!   --check            CI mode: exit nonzero when there are findings
//!   --json             emit findings as a JSON array instead of text
//!   --only RULES       run only the comma-separated rules
//!   --skip RULES       run all rules except the comma-separated ones
//!   --list-rules       print the rule catalog and exit
//! ```
//!
//! With no path, the current directory is scanned. Paths are scanned recursively for
//! `.rs` files (skipping `target/`, `.git/`, and `fixtures/`); diagnostic paths are
//! reported relative to each scan root, so run the tool from the workspace root for the
//! path-scoped rules to apply as configured.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use pliant_lint::config::LintConfig;
use pliant_lint::findings::{is_known_rule, to_json, Finding, ALL_RULES};
use pliant_lint::lint_path;

fn main() -> ExitCode {
    let mut check = false;
    let mut json = false;
    let mut only: Option<BTreeSet<String>> = None;
    let mut skip: BTreeSet<String> = BTreeSet::new();
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            "--list-rules" => {
                for rule in ALL_RULES {
                    println!("{:18} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--only" | "--skip" => {
                let Some(list) = args.next() else {
                    eprintln!("error: {arg} requires a comma-separated rule list");
                    return ExitCode::from(2);
                };
                let rules: BTreeSet<String> =
                    list.split(',').map(|r| r.trim().to_string()).collect();
                for r in &rules {
                    if !is_known_rule(r) {
                        eprintln!("error: unknown rule `{r}` (try --list-rules)");
                        return ExitCode::from(2);
                    }
                }
                if arg == "--only" {
                    only = Some(rules);
                } else {
                    skip.extend(rules);
                }
            }
            "--help" | "-h" => {
                println!(
                    "pliant-lint [--check] [--json] [--only RULES] [--skip RULES] \
                     [--list-rules] [PATH...]"
                );
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("error: unknown option `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.is_empty() {
        paths.push(PathBuf::from("."));
    }

    let cfg = LintConfig::repo_default();
    let mut findings: Vec<Finding> = Vec::new();
    for path in &paths {
        match lint_path(path, &cfg) {
            Ok(found) => findings.extend(found),
            Err(e) => {
                eprintln!("error: cannot lint {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    findings.retain(|f| only.as_ref().is_none_or(|o| o.contains(f.rule)) && !skip.contains(f.rule));
    findings
        .sort_by(|x, y| (x.path.as_str(), x.line, x.rule).cmp(&(y.path.as_str(), y.line, y.rule)));

    if json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("pliant-lint: no findings");
        } else {
            eprintln!("pliant-lint: {} finding(s)", findings.len());
        }
    }

    if check && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
