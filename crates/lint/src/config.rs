//! Lint configuration: which functions are hot paths and which paths each
//! path-scoped rule covers.
//!
//! Paths are matched against the diagnostic path (the path relative to the scan root,
//! with `/` separators), so the tool expects to be invoked from — or pointed at — the
//! workspace root, which is how CI and the self-hosting tests run it.

/// Configuration shared by every rule.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Functions whose bodies must stay allocation-free. Entries are either bare names
    /// (`fast_exp`, matching any function of that name) or qualified as `Type::name`
    /// (`ClusterNode::step`, matching only inside `impl ClusterNode`).
    pub hot_path_fns: Vec<String>,
    /// Path prefixes where wall-clock reads (`Instant::now`, `SystemTime`) are allowed:
    /// the bench harness and the criterion compat shim measure real time by design.
    pub wallclock_allowed: Vec<String>,
    /// Path prefixes of determinism-sensitive code where `HashMap`/`HashSet` are denied
    /// (iteration order reaches archives, statistics, or RNG consumption order). The
    /// `crates/cluster/` prefix deliberately covers the fault-injection and
    /// checkpoint/restore modules (`faults.rs`, the checkpoint halves of `sim.rs`,
    /// `node.rs`, and `engine.rs`) as well as the rack-topology layer
    /// (`topology.rs` and the placement sampling in `sim.rs`): resume-byte-identity
    /// and seeded rack sampling are determinism guarantees, so those files face the
    /// same wall-clock and hash-order denials as the simulation core (pinned in the
    /// lint integration tests).
    pub hash_container_scoped: Vec<String>,
    /// Path prefixes where `unwrap()`/`expect()` in non-test code are denied.
    pub panic_hygiene_scoped: Vec<String>,
    /// Path prefixes exempt from the `validate-bypass` rule (the serde compat shim
    /// itself).
    pub validate_bypass_exempt: Vec<String>,
    /// Directory names skipped entirely while walking (build output, VCS metadata, and
    /// the lint crate's own seeded-violation fixtures).
    pub skip_dirs: Vec<String>,
}

impl LintConfig {
    /// The workspace's committed configuration: hot-path list and path scopes matching
    /// the repository layout.
    pub fn repo_default() -> Self {
        let s = |v: &[&str]| v.iter().map(|s| s.to_string()).collect();
        LintConfig {
            hot_path_fns: s(&[
                // The allocation-free per-interval loop (PR 4) and everything it calls
                // per sample.
                "ColocationSim::advance_reusing",
                "PerformanceMonitor::observe_interval",
                "ClusterNode::step",
                "fast_exp",
                "fast_ln",
                "poly_exp",
                "sample_normal_ziggurat",
                "fill_lognormals",
                // The hyperscale grouped-dispatch path (PR 7): runs once per interval
                // on clustered fleets whose logical size can reach 100k nodes, and the
                // per-sample replication inside ClusterNode::step.
                "LoadBalancer::split_grouped",
                "Autoscaler::plan_grouped",
                "LatencyHistogram::record_n",
                // The observability emit path (PR 8): called at every decision point
                // of every per-interval loop above; the Null sink (Off) and the
                // preallocated ring must both stay allocation-free (the contract is
                // also pinned dynamically in tests/hot_path.rs).
                "ObsBuffer::emit",
                "MetricsRegistry::record",
                // The fault-injection per-interval path (PR 9): node-health masking
                // runs for every instance of every interval whenever a fleet carries
                // a fault profile, and the fault-aware balancer split sits on the
                // same dispatch path as split/split_grouped above.
                "NodeHealth::is_serving",
                "LoadBalancer::split_active",
                // The topology placement/migration path (PR 10): rack scoring runs at
                // every placement decision, the extract/implant pair moves in-flight
                // batch state between nodes on the consolidation pass, and the drain
                // check walks every instance each interval — all inside the
                // per-interval loop, all required to reuse caller-provided buffers.
                "ClusterSim::rack_score",
                "ClusterNode::extract_job",
                "ClusterNode::implant_job",
                "ColocationSim::extract_app",
                "ColocationSim::implant_app",
                "Autoscaler::park_fully_drained",
            ]),
            wallclock_allowed: s(&["crates/bench/", "crates/compat/criterion/"]),
            hash_container_scoped: s(&[
                "crates/sim/",
                "crates/core/",
                "crates/cluster/",
                "crates/telemetry/",
                "crates/workloads/",
                "crates/explore/",
                "crates/approx/",
                "src/",
            ]),
            panic_hygiene_scoped: s(&[
                "crates/sim/src/",
                "crates/core/src/",
                "crates/cluster/src/",
                "crates/telemetry/src/",
            ]),
            validate_bypass_exempt: s(&["crates/compat/"]),
            skip_dirs: s(&["target", ".git", "fixtures"]),
        }
    }

    /// A configuration whose path-scoped rules apply to *every* file: used by the
    /// fixture tests, where the seeded violations do not live under the repository's
    /// crate paths.
    pub fn all_paths() -> Self {
        LintConfig {
            wallclock_allowed: Vec::new(),
            hash_container_scoped: vec![String::new()],
            panic_hygiene_scoped: vec![String::new()],
            validate_bypass_exempt: Vec::new(),
            ..Self::repo_default()
        }
    }
}

/// Whether `rel_path` (diagnostic form, `/` separators) starts with any of `prefixes`.
pub fn path_in(rel_path: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel_path.starts_with(p.as_str()))
}

/// Whether the file is test-only by location: under a `tests/`, `benches/`, or
/// `examples/` directory.
pub fn path_is_test_code(rel_path: &str) -> bool {
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|dir| rel_path.starts_with(dir) || rel_path.contains(&format!("/{dir}")))
}
