//! The five rules, each grounded in a bug class this repository has actually shipped
//! and then fixed reactively (see the README "Static analysis" section for the history).

use crate::analysis::FileAnalysis;
use crate::config::{path_in, path_is_test_code, LintConfig};
use crate::findings::{rules, Finding};
use crate::tokenizer::{Token, TokenKind};

/// Runs every rule over one analyzed file. Findings are sorted by line then rule, with
/// at most one finding per `(rule, line)` pair, and pragma-suppressed findings removed.
pub fn run_rules(a: &FileAnalysis, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    nan_unsafe_cmp(a, &mut findings);
    hot_path_alloc(a, cfg, &mut findings);
    nondeterminism(a, cfg, &mut findings);
    validate_bypass(a, cfg, &mut findings);
    panic_hygiene(a, cfg, &mut findings);

    findings.retain(|f| !a.is_suppressed(f.rule, f.line));
    findings.sort_by(|x, y| (x.line, x.rule).cmp(&(y.line, y.rule)));
    findings.dedup_by(|x, y| x.line == y.line && x.rule == y.rule);
    findings
}

fn emit(findings: &mut Vec<Finding>, rule: &'static str, a: &FileAnalysis, line: u32, msg: String) {
    findings.push(Finding {
        rule,
        path: a.rel_path.clone(),
        line,
        message: msg,
    });
}

/// `x.partial_cmp(y).unwrap()` / `.expect(..)`: panics the moment a NaN reaches the
/// sort/max — the bug class behind the PR 4 quantile panics and the PR 5 pareto sorts.
/// Applies everywhere, including test code (the PR 4 sweep fixed test sorts too).
fn nan_unsafe_cmp(a: &FileAnalysis, findings: &mut Vec<Finding>) {
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("partial_cmp")
            || !matches!(toks.get(i + 1), Some(t) if t.is_punct('('))
        {
            continue;
        }
        let close = match matching(toks, i + 1, '(', ')') {
            Some(c) => c,
            None => continue,
        };
        if matches!(toks.get(close + 1), Some(t) if t.is_punct('.'))
            && matches!(toks.get(close + 2), Some(t) if t.is_ident("unwrap") || t.is_ident("expect"))
        {
            emit(
                findings,
                rules::NAN_UNSAFE_CMP,
                a,
                toks[i].line,
                "float comparison panics on NaN; use f64::total_cmp (NaN sorts last) instead \
                 of partial_cmp chained into unwrap/expect"
                    .to_string(),
            );
        }
    }
}

/// Allocating constructs inside the configured hot-path functions. PR 4 made the
/// per-interval loop allocation-free for 2.2-3x throughput; this keeps it that way.
fn hot_path_alloc(a: &FileAnalysis, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    if path_is_test_code(&a.rel_path) {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        let ctx = &a.context[i];
        if ctx.in_test {
            continue;
        }
        let Some(fi) = ctx.function else { continue };
        let func = &a.functions[fi];
        let hot = cfg.hot_path_fns.iter().any(|entry| {
            if entry.contains("::") {
                *entry == func.qualified
            } else {
                *entry == func.name
            }
        });
        if !hot {
            continue;
        }
        let construct: Option<&str> = if path_call(toks, i, "Vec", "new") {
            Some("Vec::new")
        } else if path_call(toks, i, "Box", "new") {
            Some("Box::new")
        } else if path_call(toks, i, "String", "from") {
            Some("String::from")
        } else if macro_invocation(toks, i, "vec") {
            Some("vec![..]")
        } else if macro_invocation(toks, i, "format") {
            Some("format!")
        } else if method_call(toks, i, "collect") {
            Some(".collect()")
        } else if method_call(toks, i, "to_vec") {
            Some(".to_vec()")
        } else {
            None
        };
        if let Some(what) = construct {
            emit(
                findings,
                rules::HOT_PATH_ALLOC,
                a,
                toks[i].line,
                format!(
                    "`{what}` allocates inside hot-path function `{}`; reuse a caller-provided \
                     buffer instead (see ColocationSim::advance_reusing)",
                    func.qualified
                ),
            );
        }
    }
}

/// Wall-clock reads outside the bench allowlist, and hash-ordered containers in
/// determinism-sensitive code: both break the serial==parallel byte-identity guarantee
/// the engine tests pin.
fn nondeterminism(a: &FileAnalysis, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    let toks = &a.tokens;
    if !path_in(&a.rel_path, &cfg.wallclock_allowed) {
        for i in 0..toks.len() {
            if path_call(toks, i, "Instant", "now") {
                emit(
                    findings,
                    rules::NONDETERMINISM,
                    a,
                    toks[i].line,
                    "Instant::now reads the wall clock; simulated components must derive all \
                     timing from simulated time (only the bench harness measures real time)"
                        .to_string(),
                );
            } else if toks[i].is_ident("SystemTime") {
                emit(
                    findings,
                    rules::NONDETERMINISM,
                    a,
                    toks[i].line,
                    "SystemTime reads the wall clock; simulated components must be \
                     deterministic in the seed"
                        .to_string(),
                );
            }
        }
    }
    if path_in(&a.rel_path, &cfg.hash_container_scoped) && !path_is_test_code(&a.rel_path) {
        for (i, tok) in toks.iter().enumerate() {
            if a.context[i].in_test {
                continue;
            }
            if tok.is_ident("HashMap") || tok.is_ident("HashSet") {
                emit(
                    findings,
                    rules::NONDETERMINISM,
                    a,
                    tok.line,
                    format!(
                        "`{}` iteration order is nondeterministic and can reach archives, \
                         statistics, or RNG consumption order; use BTreeMap/BTreeSet or a Vec",
                        tok.text
                    ),
                );
            }
        }
    }
}

/// `#[derive(Deserialize)]` on a type that defines `fn validate`: a deserialized archive
/// bypasses the invariants (the PR 5 InterferenceModel/PowerModel bug). The fix is a
/// hand-written `Deserialize` whose `from_value` calls `validate()`.
fn validate_bypass(a: &FileAnalysis, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    if path_in(&a.rel_path, &cfg.validate_bypass_exempt) || path_is_test_code(&a.rel_path) {
        return;
    }
    for d in &a.derives {
        if d.in_test || !d.traits.iter().any(|t| t == "Deserialize") {
            continue;
        }
        if a.validate_types.contains(&d.type_name) {
            emit(
                findings,
                rules::VALIDATE_BYPASS,
                a,
                d.line,
                format!(
                    "`{}` defines `fn validate` but derives Deserialize, so a deserialized \
                     archive bypasses its invariants; hand-write `impl serde::Deserialize` \
                     calling validate() (see InterferenceModel)",
                    d.type_name
                ),
            );
        }
    }
}

/// `unwrap()`/`expect()` in non-test library code of the simulation crates. Library
/// invariants that genuinely cannot fail are annotated with an allow pragma naming the
/// invariant; everything else should propagate a typed error.
fn panic_hygiene(a: &FileAnalysis, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    if !path_in(&a.rel_path, &cfg.panic_hygiene_scoped) || path_is_test_code(&a.rel_path) {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.context[i].in_test {
            continue;
        }
        if i >= 1
            && (toks[i].is_ident("unwrap") || toks[i].is_ident("expect"))
            && method_call(toks, i - 1, &toks[i].text)
        {
            emit(
                findings,
                rules::PANIC_HYGIENE,
                a,
                toks[i].line,
                format!(
                    "`.{}()` can panic in library code; propagate a typed error, or annotate \
                     with `// pliant-lint: allow(panic-hygiene)` naming the invariant that \
                     makes it unreachable",
                    toks[i].text
                ),
            );
        }
    }
}

// --- token-pattern helpers ---------------------------------------------------------

/// `tokens[i..]` spells `first::second` (e.g. `Vec::new`, `Instant::now`).
fn path_call(toks: &[Token], i: usize, first: &str, second: &str) -> bool {
    toks[i].is_ident(first)
        && matches!(toks.get(i + 1), Some(t) if t.is_punct(':'))
        && matches!(toks.get(i + 2), Some(t) if t.is_punct(':'))
        && matches!(toks.get(i + 3), Some(t) if t.is_ident(second))
}

/// `tokens[i..]` spells `name!`.
fn macro_invocation(toks: &[Token], i: usize, name: &str) -> bool {
    toks[i].is_ident(name) && matches!(toks.get(i + 1), Some(t) if t.is_punct('!'))
}

/// `tokens[i..]` spells `.name(` — a method call, not a definition or path.
fn method_call(toks: &[Token], i: usize, name: &str) -> bool {
    i < toks.len()
        && toks[i].is_punct('.')
        && matches!(toks.get(i + 1), Some(t) if t.is_ident(name))
        && matches!(toks.get(i + 2), Some(t) if t.is_punct('('))
}

/// Index of the bracket matching `toks[open]`, or `None` if unbalanced.
fn matching(toks: &[Token], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.is_punct(open_c) {
                depth += 1;
            } else if t.is_punct(close_c) {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
        }
    }
    None
}
