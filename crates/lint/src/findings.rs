//! Diagnostics: the finding type, rule metadata, and output formatting.

use std::fmt;

/// Machine-readable rule identifiers.
pub mod rules {
    /// `partial_cmp` chained into `unwrap()`/`expect()`.
    pub const NAN_UNSAFE_CMP: &str = "nan-unsafe-cmp";
    /// Allocation in a configured hot-path function.
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    /// Wall-clock reads or hash-ordered containers in determinism-sensitive code.
    pub const NONDETERMINISM: &str = "nondeterminism";
    /// `#[derive(Deserialize)]` on a type that defines `fn validate`.
    pub const VALIDATE_BYPASS: &str = "validate-bypass";
    /// `unwrap()`/`expect()` in non-test library code.
    pub const PANIC_HYGIENE: &str = "panic-hygiene";
}

/// Static description of one rule, for `--list-rules` and the README catalog.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule identifier (also the name used in `allow(...)` pragmas and `--only`).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// Every rule the tool knows, in reporting order.
pub const ALL_RULES: &[RuleInfo] = &[
    RuleInfo {
        id: rules::NAN_UNSAFE_CMP,
        summary: "float comparison via partial_cmp(..).unwrap()/expect(); use f64::total_cmp",
    },
    RuleInfo {
        id: rules::HOT_PATH_ALLOC,
        summary: "allocating construct inside a configured hot-path function",
    },
    RuleInfo {
        id: rules::NONDETERMINISM,
        summary: "wall-clock read outside the bench allowlist, or HashMap/HashSet in \
                  determinism-sensitive code",
    },
    RuleInfo {
        id: rules::VALIDATE_BYPASS,
        summary: "#[derive(Deserialize)] on a type that defines fn validate; hand-write \
                  Deserialize so archives validate at the boundary",
    },
    RuleInfo {
        id: rules::PANIC_HYGIENE,
        summary: "unwrap()/expect() in non-test library code of sim/core/cluster/telemetry",
    },
];

/// Whether `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    ALL_RULES.iter().any(|r| r.id == id)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Path relative to the scan root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON array (the tool is dependency-free, so this is a minimal
/// hand-rolled serializer; keys are stable and the array is sorted like the text output).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.path),
            f.line,
            escape(f.rule),
            escape(&f.message)
        ));
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_sorts_keys_stably() {
        let findings = vec![Finding {
            rule: rules::PANIC_HYGIENE,
            path: "a\"b.rs".to_string(),
            line: 3,
            message: "say \"no\"\nplease".to_string(),
        }];
        let json = to_json(&findings);
        assert!(json.contains(r#""path": "a\"b.rs""#));
        assert!(json.contains(r#""line": 3"#));
        assert!(json.contains(r#"say \"no\"\nplease"#));
    }

    #[test]
    fn all_rule_ids_are_unique_and_kebab_case() {
        for (i, a) in ALL_RULES.iter().enumerate() {
            assert!(a.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            for b in &ALL_RULES[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }
}
