//! Fast polynomial approximations of `exp` and `ln` for stochastic sample generation.
//!
//! The per-interval hot path of the co-location simulator generates on the order of a
//! thousand lognormal latency samples per decision interval, and profiling shows the
//! `libm` transcendental calls inside that loop dominate the whole simulation. These
//! replacements use the standard range-reduction + short-polynomial constructions
//! (Cody–Waite for `exp`, atanh-series for `ln`), written as plain multiply/add chains
//! so the compiler can pipeline independent iterations.
//!
//! Accuracy is bounded well below `1e-11` relative error across the full double range
//! (tested against `std` in this module), which is far tighter than the statistical
//! noise of any sampled quantity — but these are approximations, so they are reserved
//! for *sample generation* (where only the distribution matters) and never used in
//! analytics or reported statistics.
//!
//! Determinism: both functions are pure sequences of IEEE-754 double operations with no
//! fused-multiply-add, so for a given input they return the same bits on every platform
//! and every run — unlike `libm`, whose `exp`/`ln`/`cos` bit patterns vary between
//! implementations. (The repo's determinism guarantee is per-build, so either property
//! suffices; the fixed bit patterns simply make these functions easier to test.)

/// log2(e), used to reduce `exp(x)` to `2^n * exp(r)`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of ln(2); exactly representable product with small integers.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of ln(2) (`ln(2) - LN2_HI`).
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Adding and subtracting `2^52 + 2^51` rounds a double to the nearest integer without a
/// branch or an SSE4 `round` instruction; valid for |x| < 2^51.
const ROUND_SHIFT: f64 = 6_755_399_441_055_744.0;

/// Fast `e^x` with relative error below ~2e-14 on the finite range.
///
/// Overflow (`x` ≳ 709.8) returns `f64::INFINITY`, deep underflow (`x` ≲ -745.2)
/// returns `0.0`, and NaN propagates — matching `f64::exp`'s edge behavior.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x > 709.782_712_893_384 {
        return f64::INFINITY;
    }
    if x < -745.2 {
        return 0.0;
    }
    // Cody–Waite range reduction: x = n·ln2 + r with |r| <= ln2/2.
    let nf = (x * LOG2_E + ROUND_SHIFT) - ROUND_SHIFT;
    let r = (x - nf * LN2_HI) - nf * LN2_LO;
    // Taylor polynomial of e^r on [-0.3466, 0.3466]; remainder r^12/12! < 7e-15.
    let p = poly_exp(r);
    // Scale by 2^n through the exponent bits; a two-step scale keeps subnormal results
    // representable (n can reach -1074 before the underflow guard above triggers).
    let n = nf as i64;
    if (-1021..=1023).contains(&n) {
        p * f64::from_bits(((1023 + n) as u64) << 52)
    } else if n > 1023 {
        f64::INFINITY
    } else {
        // Subnormal range: scale in two exactly-representable steps.
        p * f64::from_bits(((1023 + n + 960) as u64) << 52) * f64::from_bits((63u64) << 52)
    }
}

/// Degree-11 Taylor polynomial of `e^r`, Horner form.
#[inline]
fn poly_exp(r: f64) -> f64 {
    const C: [f64; 12] = [
        1.0,
        1.0,
        1.0 / 2.0,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5_040.0,
        1.0 / 40_320.0,
        1.0 / 362_880.0,
        1.0 / 3_628_800.0,
        1.0 / 39_916_800.0,
    ];
    let mut p = C[11];
    p = p * r + C[10];
    p = p * r + C[9];
    p = p * r + C[8];
    p = p * r + C[7];
    p = p * r + C[6];
    p = p * r + C[5];
    p = p * r + C[4];
    p = p * r + C[3];
    p = p * r + C[2];
    p = p * r + C[1];
    p * r + C[0]
}

/// Fast natural logarithm with absolute error below ~1e-13 (relative error below
/// ~2e-13 away from 1).
///
/// `ln(0) = -inf`, negative inputs and NaN return NaN, `ln(inf) = inf` — matching
/// `f64::ln`'s edge behavior. Subnormal inputs are scaled into the normal range first.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    if x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return f64::NEG_INFINITY;
    }
    if x == f64::INFINITY {
        return f64::INFINITY;
    }
    let (x, sub_offset) = if x < f64::MIN_POSITIVE {
        // Subnormal: scale by 2^54 (exact) and subtract 54·ln2 at the end.
        (x * 18_014_398_509_481_984.0, 54.0)
    } else {
        (x, 0.0)
    };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) as i64 & 0x7ff) - 1023;
    // Mantissa m in [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    // Center m on 1 (m in [sqrt(1/2), sqrt(2))) so the atanh series argument stays small.
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    let ef = e as f64 - sub_offset;
    // ln m = 2·atanh(t) with t = (m-1)/(m+1), |t| <= 0.1716.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // Odd series through t^15; remainder 2·t^17/17 < 2e-14.
    let mut p = 1.0 / 15.0;
    p = p * t2 + 1.0 / 13.0;
    p = p * t2 + 1.0 / 11.0;
    p = p * t2 + 1.0 / 9.0;
    p = p * t2 + 1.0 / 7.0;
    p = p * t2 + 1.0 / 5.0;
    p = p * t2 + 1.0 / 3.0;
    p = p * t2 + 1.0;
    let ln_m = 2.0 * t * p;
    (ef * LN2_HI + ln_m) + ef * LN2_LO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f64, exact: f64) -> f64 {
        if exact == 0.0 {
            approx.abs()
        } else {
            (approx - exact).abs() / exact.abs()
        }
    }

    #[test]
    fn exp_matches_std_across_the_sampling_range() {
        // The sampler evaluates exp on sigma·z with |sigma·z| rarely above ~10, but the
        // tail machinery can reach a few hundred; sweep densely well past both.
        let mut worst = 0.0f64;
        let mut x = -700.0;
        while x <= 700.0 {
            let e = rel_err(fast_exp(x), x.exp());
            worst = worst.max(e);
            x += 0.001_7;
        }
        assert!(worst < 2e-14, "worst exp relative error {worst:.3e}");
    }

    #[test]
    fn exp_edge_behavior_matches_std() {
        assert_eq!(fast_exp(0.0), 1.0);
        assert_eq!(fast_exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(fast_exp(f64::NEG_INFINITY), 0.0);
        assert!(fast_exp(f64::NAN).is_nan());
        assert_eq!(fast_exp(800.0), f64::INFINITY);
        assert_eq!(fast_exp(-800.0), 0.0);
        // Subnormal results stay finite and ordered.
        let tiny = fast_exp(-744.0);
        assert!(tiny > 0.0 && tiny < 1e-300);
        assert!(rel_err(tiny, (-744.0f64).exp()) < 1e-10);
    }

    #[test]
    fn ln_matches_std_across_the_sampling_range() {
        // The sampler evaluates ln on uniforms in (0, 1) and on latencies up to ~1e6 µs.
        let mut worst = 0.0f64;
        let mut x = 1e-12;
        while x < 1e7 {
            let e = (fast_ln(x) - x.ln()).abs() / x.ln().abs().max(1.0);
            worst = worst.max(e);
            x *= 1.000_93;
        }
        assert!(worst < 1e-13, "worst ln error {worst:.3e}");
    }

    #[test]
    fn ln_edge_behavior_matches_std() {
        assert_eq!(fast_ln(1.0), 0.0);
        assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
        assert!(fast_ln(-1.0).is_nan());
        assert!(fast_ln(f64::NAN).is_nan());
        assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
        // Subnormals: exact scaling path.
        let sub = 5e-320f64;
        assert!((fast_ln(sub) - sub.ln()).abs() < 1e-10);
        // MIN_POSITIVE boundary uses the normal path.
        assert!((fast_ln(f64::MIN_POSITIVE) - f64::MIN_POSITIVE.ln()).abs() < 1e-10);
    }

    #[test]
    fn exp_ln_round_trip() {
        let mut x = 1e-6;
        while x < 1e6 {
            assert!(
                rel_err(fast_exp(fast_ln(x)), x) < 1e-12,
                "round trip at {x}"
            );
            x *= 1.37;
        }
    }
}
