//! Sliding-window and exponentially-weighted latency tracking.
//!
//! Pliant's performance monitor samples end-to-end latency adaptively: within each decision
//! interval it keeps a bounded window of recent samples for percentile estimation, and it
//! maintains an EWMA of the tail to smooth out single-interval noise when deciding whether
//! to step approximation up or down.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::stats::exact_quantile;

/// A bounded FIFO window of latency samples with quantile queries.
///
/// # Example
///
/// ```
/// use pliant_telemetry::window::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// w.push(1.0);
/// w.push(2.0);
/// w.push(3.0);
/// w.push(4.0); // evicts 1.0
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.quantile(1.0), Some(4.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    samples: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            samples: VecDeque::with_capacity(capacity),
        }
    }

    /// Adds a sample, evicting the oldest if the window is full.
    pub fn push(&mut self, value: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(value);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum number of samples the window can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Exact quantile of the samples currently in the window.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let values: Vec<f64> = self.samples.iter().copied().collect();
        exact_quantile(&values, q)
    }

    /// Mean of the samples currently in the window, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Iterates over samples from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &f64> {
        self.samples.iter()
    }
}

/// Exponentially-weighted moving average with a configurable smoothing factor.
///
/// # Example
///
/// ```
/// use pliant_telemetry::window::EwmaTracker;
///
/// let mut e = EwmaTracker::new(0.5);
/// e.observe(10.0);
/// e.observe(20.0);
/// assert!((e.value().unwrap() - 15.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaTracker {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaTracker {
    /// Creates a tracker with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// Larger `alpha` weights recent samples more heavily.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feeds a new observation.
    pub fn observe(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
        });
    }

    /// Current smoothed value, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Resets the tracker to its initial (empty) state.
    pub fn reset(&mut self) {
        self.value = None;
    }

    /// Smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_eviction_keeps_latest() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let all: Vec<f64> = w.iter().copied().collect();
        assert_eq!(all, vec![2.0, 3.0]);
        assert_eq!(w.capacity(), 2);
    }

    #[test]
    fn window_quantile_and_mean() {
        let mut w = SlidingWindow::new(10);
        assert!(w.is_empty());
        assert_eq!(w.quantile(0.5), None);
        assert_eq!(w.mean(), None);
        for v in [5.0, 1.0, 3.0] {
            w.push(v);
        }
        assert_eq!(w.quantile(0.5), Some(3.0));
        assert!((w.mean().unwrap() - 3.0).abs() < 1e-12);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = EwmaTracker::new(0.3);
        assert_eq!(e.value(), None);
        for _ in 0..200 {
            e.observe(7.0);
        }
        assert!((e.value().unwrap() - 7.0).abs() < 1e-9);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    fn ewma_alpha_one_tracks_last_sample() {
        let mut e = EwmaTracker::new(1.0);
        e.observe(3.0);
        e.observe(9.0);
        assert_eq!(e.value(), Some(9.0));
    }

    #[test]
    #[should_panic]
    fn ewma_invalid_alpha_panics() {
        let _ = EwmaTracker::new(0.0);
    }

    proptest! {
        #[test]
        fn prop_window_never_exceeds_capacity(
            cap in 1usize..50,
            values in proptest::collection::vec(0.0f64..1e6, 0..200),
        ) {
            let mut w = SlidingWindow::new(cap);
            for v in &values {
                w.push(*v);
                prop_assert!(w.len() <= cap);
            }
        }

        #[test]
        fn prop_ewma_bounded_by_input_range(
            alpha in 0.01f64..1.0,
            values in proptest::collection::vec(0.0f64..1e3, 1..100),
        ) {
            let mut e = EwmaTracker::new(alpha);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for v in &values {
                e.observe(*v);
                let x = e.value().unwrap();
                prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
            }
        }
    }
}
