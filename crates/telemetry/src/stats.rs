//! Streaming summary statistics.
//!
//! Welford-style online accumulation of mean/variance plus min/max, used wherever an
//! experiment needs a cheap scalar summary (per-interval execution progress, per-run
//! inaccuracy, DynamoRIO-overhead accounting, ...).

use serde::{Deserialize, Serialize};

/// Online accumulator for mean, variance, min, and max of a stream of `f64` samples.
///
/// # Example
///
/// ```
/// use pliant_telemetry::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Creates an accumulator pre-filled from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (unbiased) variance; 0.0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator (parallel-sweep reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Produces an immutable snapshot of the current statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Immutable snapshot of an [`OnlineStats`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed sample.
    pub min: f64,
    /// Maximum observed sample.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Computes the exact quantile of a slice by sorting a copy (linear interpolation between
/// order statistics). Intended for offline analysis in the experiment harness, not for the
/// hot path.
///
/// Returns `None` for an empty slice. Values are ordered with [`f64::total_cmp`], so the
/// function is total on any input: NaNs sort after `+inf` (an input containing NaN
/// therefore reports NaN for quantiles that land on one) instead of the previous
/// `partial_cmp` formulation's unspecified ordering.
///
/// # Example
///
/// ```
/// use pliant_telemetry::stats::exact_quantile;
///
/// let v = vec![4.0, 1.0, 3.0, 2.0];
/// assert_eq!(exact_quantile(&v, 0.5), Some(2.5));
/// ```
pub fn exact_quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_mean_and_variance() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; unbiased sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 113) as f64 / 7.0).collect();
        let (left, right) = data.split_at(200);
        let mut a = OnlineStats::from_slice(left);
        let b = OnlineStats::from_slice(right);
        a.merge(&b);
        let all = OnlineStats::from_slice(&data);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&OnlineStats::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn exact_quantile_basics() {
        assert_eq!(exact_quantile(&[], 0.5), None);
        assert_eq!(exact_quantile(&[7.0], 0.99), Some(7.0));
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((exact_quantile(&v, 0.99).unwrap() - 99.01).abs() < 1e-9);
        assert!((exact_quantile(&v, 0.0).unwrap() - 1.0).abs() < 1e-9);
        assert!((exact_quantile(&v, 1.0).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exact_quantile_is_total_on_nan_inputs() {
        // Regression for the NaN-panicking partial_cmp formulation: a NaN in the input
        // must not panic, must not disturb quantiles below its (last) sort position, and
        // must surface as NaN only at the top.
        let v = vec![3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(exact_quantile(&v, 0.0), Some(1.0));
        // NaN sorts last, so the finite order statistics are [1, 2, 3, NaN] and the
        // median interpolates between 2 and 3.
        assert!((exact_quantile(&v, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert!(exact_quantile(&v, 1.0).unwrap().is_nan());
    }

    #[test]
    fn summary_display_is_nonempty() {
        let s = OnlineStats::from_slice(&[1.0, 2.0]).summary();
        assert!(!format!("{s}").is_empty());
    }

    proptest! {
        #[test]
        fn prop_mean_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = OnlineStats::from_slice(&values);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.variance() >= 0.0);
        }

        #[test]
        fn prop_merge_order_independent(
            a in proptest::collection::vec(-1e3f64..1e3, 1..100),
            b in proptest::collection::vec(-1e3f64..1e3, 1..100),
        ) {
            let mut ab = OnlineStats::from_slice(&a);
            ab.merge(&OnlineStats::from_slice(&b));
            let mut ba = OnlineStats::from_slice(&b);
            ba.merge(&OnlineStats::from_slice(&a));
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-6);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-4);
            prop_assert_eq!(ab.count(), ba.count());
        }
    }
}
