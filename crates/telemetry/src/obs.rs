//! Deterministic sim-time tracing: typed events, metric counters, ring-buffer
//! retention, and export sinks.
//!
//! Every decision layer of the simulator (per-node Pliant controllers, the load
//! balancer, the batch scheduler, the energy-aware autoscaler, and the hyperscale
//! planner) emits typed, sim-time-stamped [`Event`]s into per-source [`ObsBuffer`]s.
//! Buffers are filled *worker-side* — each node's buffer lives inside the node and is
//! written by whichever worker thread advances it, exactly like the per-node latency
//! histograms and energy counters — and merged into one [`EventLog`] in deterministic
//! source order at the end of the run. Parallelism therefore changes wall-clock time,
//! never the log: a serial and a parallel run of the same scenario produce
//! byte-identical event streams.
//!
//! # Levels and cost
//!
//! Observability is opt-in per run via [`ObsLevel`]:
//!
//! * [`ObsLevel::Off`] — the default *null sink*. [`ObsBuffer::emit`] returns
//!   immediately without touching memory; the hot path pays one branch.
//! * [`ObsLevel::Decisions`] — every decision event (controller actions, QoS
//!   violations, autoscaler transitions, placements, sheds, interval summaries).
//! * [`ObsLevel::Full`] — adds the high-volume per-node-per-interval events
//!   (balancer dispatch assignments).
//!
//! Retention is bounded: each buffer is a preallocated ring that keeps the most recent
//! `capacity` records and counts what it overwrote in [`EventLog::dropped`], so a
//! 10k-node hyperscale run stays within a predictable memory budget. The
//! [`MetricsRegistry`] counters are exempt from retention — they count every emitted
//! event (replica-weighted), whether or not the ring still holds its record.
//!
//! # Clustered approximation
//!
//! Under the clustered fleet approximation each simulated instance stands for
//! `replicas` logical nodes. Its buffer tags every record with that weight
//! ([`EventRecord::weight`]), so counter-style analyses replica-weight representative
//! events the same way the outcome aggregates do; exact instances carry weight 1.
//!
//! # Sinks
//!
//! A merged [`EventLog`] can be exported as JSON Lines (one [`EventRecord`] per line,
//! the format `pliant-trace` reads back) or as Chrome trace-event JSON (open in
//! Perfetto or `chrome://tracing` for an interactive timeline). See [`SinkFormat`].

use std::io::{self, Write};

use serde::{Deserialize, Serialize};

/// Default per-node ring capacity (records), used by the engines.
pub const DEFAULT_NODE_CAPACITY: usize = 4096;
/// Default fleet-coordinator ring capacity (records), used by the cluster engine.
pub const DEFAULT_FLEET_CAPACITY: usize = 65_536;

/// How much a run records; see the module docs for the cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsLevel {
    /// Record nothing (the allocation-free null sink; the default).
    #[default]
    Off,
    /// Record decision events only.
    Decisions,
    /// Record decision events plus per-node dispatch detail.
    Full,
}

impl ObsLevel {
    /// Parses a command-line level name (`off` / `decisions` / `full`).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "decisions" => Some(ObsLevel::Decisions),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The command-line name of the level.
    pub fn as_str(&self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Decisions => "decisions",
            ObsLevel::Full => "full",
        }
    }
}

/// The kind of action a controller decision carried (the observability mirror of
/// `pliant_core::actuator::Action`, reduced to its discriminant so events stay
/// heap-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsAction {
    /// Switch an application to a different variant (precise or approximate).
    SetVariant,
    /// Reclaim one core from an application for the interactive service.
    ReclaimCore,
    /// Return one previously-reclaimed core to an application.
    ReturnCore,
}

/// A node power state as the autoscaler reports it (mirror of
/// `pliant_cluster::autoscaler::NodePowerState`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PowerStateKind {
    /// Serving traffic.
    Active,
    /// Excluded from dispatch, finishing its batch slots before parking.
    Draining,
    /// Suspended (billing the suspend draw, serving nothing).
    Parked,
}

/// What triggered an autoscaler transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleTrigger {
    /// The scale-out rule reactivated the node (sustained overload or a QoS breach).
    ScaleOut,
    /// The scale-in rule started draining the node (sustained headroom).
    ScaleIn,
    /// A draining node finished its batch work and parked.
    DrainComplete,
}

/// One typed, sim-time-stamped event. All payloads are primitive (no heap data), so
/// emitting an event never allocates; identity fields are *instance* indices (the
/// node index reported in snapshots and outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// Emitted once at fleet construction: the run's logical shape. `job_codes` of
    /// other events index `AppId::all()`.
    FleetStart {
        /// Logical fleet size.
        nodes: u32,
        /// Simulated instances (equals `nodes` in exact mode).
        instances: u32,
        /// Batch slots per node.
        slots_per_node: u32,
        /// The fleet-wide QoS target, in seconds.
        qos_target_s: f64,
    },
    /// Emitted per population group at fleet construction when the clustered
    /// approximation is active: how the group was collapsed onto representatives.
    ApproximationPlan {
        /// Population-group index.
        group: u32,
        /// Representatives simulated for the group.
        representatives: u32,
        /// Logical nodes the group contains (the representatives' summed weight).
        replicas: u32,
    },
    /// A controller produced an action for one of its applications: the monitor
    /// signal it acted on and what it decided.
    ControllerDecision {
        /// Instance index of the deciding node.
        node: u32,
        /// Application slot the action targets.
        app: u32,
        /// The smoothed tail-latency signal the decision was based on, in seconds.
        signal_p99_s: f64,
        /// Latency slack relative to the QoS target (positive = headroom).
        slack: f64,
        /// The kind of action decided.
        action: ObsAction,
    },
    /// The actuator switched an application's variant.
    VariantSwitch {
        /// Instance index.
        node: u32,
        /// Application slot.
        app: u32,
        /// Target variant: `-1` = precise, `k >= 0` indexes the approximate variants.
        variant: i64,
    },
    /// The actuator reclaimed one core from an application.
    CoreReclaimed {
        /// Instance index.
        node: u32,
        /// Application slot the core came from.
        app: u32,
    },
    /// The actuator returned one core to an application.
    CoreReturned {
        /// Instance index.
        node: u32,
        /// Application slot the core went back to.
        app: u32,
    },
    /// A measured traffic-serving interval violated the node's QoS target.
    QosViolation {
        /// Instance index.
        node: u32,
        /// The interval's p99 latency, in seconds.
        p99_s: f64,
        /// The node's QoS target, in seconds.
        qos_target_s: f64,
    },
    /// The balancer routed load to a node this interval (Full level only — one per
    /// serving node per interval).
    BalancerDispatch {
        /// Instance index.
        node: u32,
        /// Offered load routed to the node, per replica, in saturation units.
        assigned_load: f64,
    },
    /// The balancer shed an active node: it received zero load while the fleet had
    /// load to place (latency-aware dispatch squeezed it out of the rotation).
    BalancerShed {
        /// Instance index.
        node: u32,
    },
    /// The batch scheduler placed queued jobs onto a node.
    JobPlaced {
        /// Instance index of the receiving node.
        node: u32,
        /// Job identity: index into `AppId::all()`.
        job_code: u32,
        /// Logical jobs the placement stands for (a clustered batch collapses `w`
        /// identical queued jobs onto one representative slot).
        weight: u32,
    },
    /// A node slot's finished job was replaced by a fresh one (the node-side half of
    /// a placement).
    JobReplaced {
        /// Instance index.
        node: u32,
        /// Batch slot that was recycled.
        slot: u32,
        /// Logical jobs the new occupant stands for.
        weight: u32,
    },
    /// A batch job ran to completion.
    JobCompleted {
        /// Instance index.
        node: u32,
        /// Batch slot the job occupied.
        slot: u32,
        /// Logical jobs the completion stands for.
        weight: u32,
        /// Output-quality loss of the completed job, in percent.
        inaccuracy_pct: f64,
    },
    /// Fault injection crashed a node: it stops serving traffic and running batch
    /// work until it recovers.
    NodeFailed {
        /// Instance index of the crashed node.
        node: u32,
        /// Length of the outage, in decision intervals.
        outage_intervals: u32,
    },
    /// A crashed node came back after its outage and rejoined the fleet.
    NodeRecovered {
        /// Instance index of the recovered node.
        node: u32,
    },
    /// Fault injection degraded a node's effective frequency (a straggler): it keeps
    /// serving, but its capacity is scaled by `factor` until the episode ends.
    NodeDegraded {
        /// Instance index of the degraded node.
        node: u32,
        /// Capacity multiplier while degraded (`0 < factor < 1`).
        factor: f64,
        /// Length of the degradation episode, in decision intervals.
        intervals: u32,
    },
    /// A batch job lost on a crashed node was returned to the scheduler queue.
    JobRequeued {
        /// Instance index of the crashed node the job was running on.
        node: u32,
        /// Job identity: index into `AppId::all()`.
        job_code: u32,
        /// Logical jobs the requeue stands for (replica-weighted).
        weight: u32,
    },
    /// The autoscaler moved a node between power states.
    AutoscalerTransition {
        /// Instance index.
        node: u32,
        /// State before the transition.
        from: PowerStateKind,
        /// State after the transition.
        to: PowerStateKind,
        /// What triggered it.
        trigger: ScaleTrigger,
    },
    /// Fleet-interval rollup emitted by the coordinator after every interval: the
    /// per-interval counters the machines-needed narrative is reconstructed from.
    IntervalSummary {
        /// Logical nodes serving traffic this interval.
        active_nodes: u32,
        /// Total offered load, in node-saturation units.
        total_load: f64,
        /// Logical node-intervals that served traffic (replica-weighted).
        busy: u32,
        /// Logical node-intervals that violated QoS (replica-weighted).
        violating: u32,
        /// Logical jobs placed at the start of the interval.
        jobs_placed: u32,
    },
    /// The sampling-based online placement picked a rack for this interval's batch
    /// admissions: `rack` won among `candidates` sampled power domains on combined
    /// power headroom and QoS slack.
    RackPlacement {
        /// The winning rack, in topology order.
        rack: u32,
        /// Racks sampled and scored this decision.
        candidates: u32,
        /// The winner's power headroom against its rack budget, in watts
        /// (`f64::INFINITY` serialized as a very large number never occurs: an
        /// unbudgeted rack reports the sampled score's neutral headroom of `0.0`).
        power_headroom_w: f64,
        /// The winner's mean QoS slack fraction across its serving members.
        qos_slack: f64,
    },
    /// A live migration moved an in-flight batch job between nodes (consolidation
    /// draining a node without waiting for its jobs to finish).
    JobMigrated {
        /// Instance index the job was extracted from (the draining node).
        node: u32,
        /// Instance index the job was implanted into.
        to_node: u32,
        /// Logical jobs the migration stands for (replica-weighted).
        weight: u32,
    },
    /// A rack's measured power crossed its budget: the scheduler stopped admitting
    /// placements into the rack until its draw fell back under the cap.
    RackPowerCapped {
        /// The capped rack, in topology order.
        rack: u32,
        /// The rack's measured power over the previous interval, in watts.
        power_w: f64,
        /// The rack's configured budget, in watts.
        budget_w: f64,
    },
    /// A rack power domain failed: every member node crashes at once for the duration
    /// (the fault schedule carries the per-member crashes; this fleet-level event
    /// marks the correlated cause).
    RackOutage {
        /// The failed rack, in topology order.
        rack: u32,
        /// Member nodes taken down together.
        nodes: u32,
        /// Length of the outage, in decision intervals.
        duration_intervals: u32,
    },
}

/// Event kinds, used to index [`MetricsRegistry`] counters. Order is the stable
/// counter order of [`ObsSummary::counters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum EventKind {
    /// [`Event::FleetStart`].
    FleetStart = 0,
    /// [`Event::ApproximationPlan`].
    ApproximationPlan,
    /// [`Event::ControllerDecision`].
    ControllerDecision,
    /// [`Event::VariantSwitch`].
    VariantSwitch,
    /// [`Event::CoreReclaimed`].
    CoreReclaimed,
    /// [`Event::CoreReturned`].
    CoreReturned,
    /// [`Event::QosViolation`].
    QosViolation,
    /// [`Event::BalancerDispatch`].
    BalancerDispatch,
    /// [`Event::BalancerShed`].
    BalancerShed,
    /// [`Event::JobPlaced`].
    JobPlaced,
    /// [`Event::JobReplaced`].
    JobReplaced,
    /// [`Event::JobCompleted`].
    JobCompleted,
    /// [`Event::NodeFailed`].
    NodeFailed,
    /// [`Event::NodeRecovered`].
    NodeRecovered,
    /// [`Event::NodeDegraded`].
    NodeDegraded,
    /// [`Event::JobRequeued`].
    JobRequeued,
    /// [`Event::AutoscalerTransition`].
    AutoscalerTransition,
    /// [`Event::IntervalSummary`].
    IntervalSummary,
    /// [`Event::RackPlacement`].
    RackPlacement,
    /// [`Event::JobMigrated`].
    JobMigrated,
    /// [`Event::RackPowerCapped`].
    RackPowerCapped,
    /// [`Event::RackOutage`].
    RackOutage,
}

/// Number of event kinds (length of [`EventKind::ALL`]).
pub const EVENT_KINDS: usize = 22;

impl EventKind {
    /// Every kind, in counter order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::FleetStart,
        EventKind::ApproximationPlan,
        EventKind::ControllerDecision,
        EventKind::VariantSwitch,
        EventKind::CoreReclaimed,
        EventKind::CoreReturned,
        EventKind::QosViolation,
        EventKind::BalancerDispatch,
        EventKind::BalancerShed,
        EventKind::JobPlaced,
        EventKind::JobReplaced,
        EventKind::JobCompleted,
        EventKind::NodeFailed,
        EventKind::NodeRecovered,
        EventKind::NodeDegraded,
        EventKind::JobRequeued,
        EventKind::AutoscalerTransition,
        EventKind::IntervalSummary,
        EventKind::RackPlacement,
        EventKind::JobMigrated,
        EventKind::RackPowerCapped,
        EventKind::RackOutage,
    ];

    /// The kind's stable name (matches the [`Event`] variant name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::FleetStart => "FleetStart",
            EventKind::ApproximationPlan => "ApproximationPlan",
            EventKind::ControllerDecision => "ControllerDecision",
            EventKind::VariantSwitch => "VariantSwitch",
            EventKind::CoreReclaimed => "CoreReclaimed",
            EventKind::CoreReturned => "CoreReturned",
            EventKind::QosViolation => "QosViolation",
            EventKind::BalancerDispatch => "BalancerDispatch",
            EventKind::BalancerShed => "BalancerShed",
            EventKind::JobPlaced => "JobPlaced",
            EventKind::JobReplaced => "JobReplaced",
            EventKind::JobCompleted => "JobCompleted",
            EventKind::NodeFailed => "NodeFailed",
            EventKind::NodeRecovered => "NodeRecovered",
            EventKind::NodeDegraded => "NodeDegraded",
            EventKind::JobRequeued => "JobRequeued",
            EventKind::AutoscalerTransition => "AutoscalerTransition",
            EventKind::IntervalSummary => "IntervalSummary",
            EventKind::RackPlacement => "RackPlacement",
            EventKind::JobMigrated => "JobMigrated",
            EventKind::RackPowerCapped => "RackPowerCapped",
            EventKind::RackOutage => "RackOutage",
        }
    }

    /// Parses a kind name (as printed by [`Self::name`]).
    pub fn parse(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            Event::FleetStart { .. } => EventKind::FleetStart,
            Event::ApproximationPlan { .. } => EventKind::ApproximationPlan,
            Event::ControllerDecision { .. } => EventKind::ControllerDecision,
            Event::VariantSwitch { .. } => EventKind::VariantSwitch,
            Event::CoreReclaimed { .. } => EventKind::CoreReclaimed,
            Event::CoreReturned { .. } => EventKind::CoreReturned,
            Event::QosViolation { .. } => EventKind::QosViolation,
            Event::BalancerDispatch { .. } => EventKind::BalancerDispatch,
            Event::BalancerShed { .. } => EventKind::BalancerShed,
            Event::JobPlaced { .. } => EventKind::JobPlaced,
            Event::JobReplaced { .. } => EventKind::JobReplaced,
            Event::JobCompleted { .. } => EventKind::JobCompleted,
            Event::NodeFailed { .. } => EventKind::NodeFailed,
            Event::NodeRecovered { .. } => EventKind::NodeRecovered,
            Event::NodeDegraded { .. } => EventKind::NodeDegraded,
            Event::JobRequeued { .. } => EventKind::JobRequeued,
            Event::AutoscalerTransition { .. } => EventKind::AutoscalerTransition,
            Event::IntervalSummary { .. } => EventKind::IntervalSummary,
            Event::RackPlacement { .. } => EventKind::RackPlacement,
            Event::JobMigrated { .. } => EventKind::JobMigrated,
            Event::RackPowerCapped { .. } => EventKind::RackPowerCapped,
            Event::RackOutage { .. } => EventKind::RackOutage,
        }
    }

    /// The minimum [`ObsLevel`] at which the event is recorded.
    pub fn min_level(&self) -> ObsLevel {
        match self {
            Event::BalancerDispatch { .. } => ObsLevel::Full,
            _ => ObsLevel::Decisions,
        }
    }

    /// The instance index the event is about, when it has one (fleet-wide events —
    /// `FleetStart`, `ApproximationPlan`, `IntervalSummary`, and the rack-scoped
    /// events — have none; a migration reports its *source* node, the one being
    /// drained).
    pub fn node(&self) -> Option<u32> {
        match *self {
            Event::ControllerDecision { node, .. }
            | Event::VariantSwitch { node, .. }
            | Event::CoreReclaimed { node, .. }
            | Event::CoreReturned { node, .. }
            | Event::QosViolation { node, .. }
            | Event::BalancerDispatch { node, .. }
            | Event::BalancerShed { node }
            | Event::JobPlaced { node, .. }
            | Event::JobReplaced { node, .. }
            | Event::JobCompleted { node, .. }
            | Event::NodeFailed { node, .. }
            | Event::NodeRecovered { node }
            | Event::NodeDegraded { node, .. }
            | Event::JobRequeued { node, .. }
            | Event::AutoscalerTransition { node, .. }
            | Event::JobMigrated { node, .. } => Some(node),
            Event::FleetStart { .. }
            | Event::ApproximationPlan { .. }
            | Event::IntervalSummary { .. }
            | Event::RackPlacement { .. }
            | Event::RackPowerCapped { .. }
            | Event::RackOutage { .. } => None,
        }
    }
}

/// One recorded event: the decision interval and sim time it happened at, which
/// buffer recorded it, and the replica weight of that source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Decision-interval index (0-based).
    pub interval: u32,
    /// Simulated time of the interval, in seconds.
    pub time_s: f64,
    /// Which buffer recorded the event: `0` is the fleet coordinator, `i + 1` is
    /// instance `i`.
    pub source: u32,
    /// Replica weight of the source — the logical nodes a representative-sourced
    /// event stands for (`1` on exact instances and the coordinator). Counter-style
    /// analyses multiply by this, exactly like the outcome aggregates.
    pub weight: u32,
    /// The event itself.
    pub event: Event,
}

/// Fixed-slot counters over event kinds: raw emitted counts and replica-weighted
/// logical counts. Incrementing never allocates (the registry is two fixed arrays),
/// which is what lets it sit on the worker-side hot path.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    counts: [u64; EVENT_KINDS],
    weighted: [u64; EVENT_KINDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            counts: [0; EVENT_KINDS],
            weighted: [0; EVENT_KINDS],
        }
    }

    /// Counts one event of `kind` emitted by a source standing for `weight` logical
    /// nodes.
    #[inline]
    pub fn record(&mut self, kind: EventKind, weight: u32) {
        let i = kind as usize;
        self.counts[i] += 1;
        self.weighted[i] += u64::from(weight);
    }

    /// Raw emitted count for `kind`.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Replica-weighted logical count for `kind`.
    pub fn weighted(&self, kind: EventKind) -> u64 {
        self.weighted[kind as usize]
    }

    /// Folds another registry into this one (used by the deterministic merge).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for i in 0..EVENT_KINDS {
            self.counts[i] += other.counts[i];
            self.weighted[i] += other.weighted[i];
        }
    }

    /// Total raw events counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total replica-weighted events counted.
    pub fn total_weighted(&self) -> u64 {
        self.weighted.iter().sum()
    }
}

/// One named counter in an [`ObsSummary`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsCounter {
    /// Event-kind name (see [`EventKind::name`]).
    pub name: String,
    /// Raw emitted events of this kind.
    pub count: u64,
    /// Replica-weighted logical events of this kind.
    pub weighted: u64,
}

/// Outcome-attached observability rollup: what a run emitted, folded per event kind.
/// Attached as `ColocationOutcome.obs` / `ClusterOutcome.obs` with `serde(default)`,
/// so archives written before the observability subsystem still deserialize (as an
/// empty, level-`Off` summary).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// The level the run recorded at.
    #[serde(default)]
    pub level: ObsLevel,
    /// Raw events emitted (counted even when the ring dropped their records).
    #[serde(default)]
    pub events_recorded: u64,
    /// Replica-weighted logical events emitted.
    #[serde(default)]
    pub events_weighted: u64,
    /// Records the bounded rings overwrote (retention pressure; raise the capacity or
    /// lower the level if nonzero matters).
    #[serde(default)]
    pub events_dropped: u64,
    /// Per-kind counters in [`EventKind::ALL`] order, omitting all-zero kinds.
    #[serde(default)]
    pub counters: Vec<ObsCounter>,
}

impl ObsSummary {
    /// The counter for a kind, when the run emitted any.
    pub fn counter(&self, kind: EventKind) -> Option<&ObsCounter> {
        self.counters.iter().find(|c| c.name == kind.name())
    }
}

/// A bounded, per-source event ring: the worker-side half of the subsystem. One
/// buffer belongs to exactly one source (the fleet coordinator or one node
/// instance), so filling it requires no synchronization.
#[derive(Debug, Clone)]
pub struct ObsBuffer {
    level: ObsLevel,
    source: u32,
    weight: u32,
    capacity: usize,
    /// Ring storage. Until the ring wraps this is chronological; afterwards the
    /// oldest record sits at `head` and the ring reads `records[head..] ++
    /// records[..head]`.
    records: Vec<EventRecord>,
    head: usize,
    dropped: u64,
    registry: MetricsRegistry,
}

impl ObsBuffer {
    /// A disabled buffer ([`ObsLevel::Off`], zero capacity, no allocation). This is
    /// the null sink every engine uses by default.
    pub fn disabled() -> Self {
        ObsBuffer {
            level: ObsLevel::Off,
            source: 0,
            weight: 1,
            capacity: 0,
            records: Vec::new(),
            head: 0,
            dropped: 0,
            registry: MetricsRegistry::new(),
        }
    }

    /// A recording buffer for `source` (0 = fleet coordinator, `i + 1` = instance
    /// `i`) whose events stand for `weight` logical nodes, retaining the most recent
    /// `capacity` records. The ring is preallocated here so [`Self::emit`] never
    /// allocates.
    pub fn new(level: ObsLevel, source: u32, weight: u32, capacity: usize) -> Self {
        let capacity = if level == ObsLevel::Off { 0 } else { capacity };
        ObsBuffer {
            level,
            source,
            weight: weight.max(1),
            capacity,
            records: Vec::with_capacity(capacity),
            head: 0,
            dropped: 0,
            registry: MetricsRegistry::new(),
        }
    }

    /// The buffer's recording level.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Whether the buffer records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != ObsLevel::Off
    }

    /// Records one event at `interval` / `time_s`. With the level
    /// [`Off`](ObsLevel::Off) this is a no-op (one branch, no memory traffic); below
    /// the event's [`Event::min_level`] it is likewise skipped. Otherwise the
    /// counters are updated and the record lands in the ring, overwriting the oldest
    /// record once `capacity` is reached. Never allocates.
    #[inline]
    pub fn emit(&mut self, interval: u32, time_s: f64, event: Event) {
        if self.level == ObsLevel::Off {
            return;
        }
        if event.min_level() == ObsLevel::Full && self.level != ObsLevel::Full {
            return;
        }
        self.registry.record(event.kind(), self.weight);
        let record = EventRecord {
            interval,
            time_s,
            source: self.source,
            weight: self.weight,
            event,
        };
        if self.records.len() < self.capacity {
            self.records.push(record);
        } else if self.capacity > 0 {
            self.records[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// Records the ring currently holds (oldest lost records excluded).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the ring holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records the ring overwrote (or skipped, for zero-capacity buffers).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffer's counters.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Drains the ring into `out` in chronological order and folds the counters into
    /// `registry`, leaving the buffer empty but reusable.
    fn drain_into(&mut self, out: &mut Vec<EventRecord>, registry: &mut MetricsRegistry) -> u64 {
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        registry.merge(&self.registry);
        let dropped = self.dropped;
        self.records.clear();
        self.head = 0;
        self.dropped = 0;
        self.registry = MetricsRegistry::new();
        dropped
    }
}

/// The merged, deterministic event stream of one run.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    /// The level the run recorded at.
    pub level: ObsLevel,
    /// Every retained record, ordered by `(interval, source, emission order)`.
    pub records: Vec<EventRecord>,
    /// Records the bounded rings overwrote across all sources.
    pub dropped: u64,
    registry: MetricsRegistry,
}

impl EventLog {
    /// An empty log at a level.
    pub fn empty(level: ObsLevel) -> Self {
        EventLog {
            level,
            records: Vec::new(),
            dropped: 0,
            registry: MetricsRegistry::new(),
        }
    }

    /// Merges per-source buffers into one deterministic stream. `buffers` must be
    /// supplied in source order (fleet coordinator first, then instances by index) —
    /// the same deterministic node order the cluster engine uses to merge latency
    /// histograms and energy. Within a source, records keep their emission order;
    /// across sources they are interleaved by interval with a stable sort, so the
    /// merged stream is identical for serial and parallel runs.
    pub fn merge(level: ObsLevel, buffers: impl IntoIterator<Item = ObsBuffer>) -> Self {
        let mut records = Vec::new();
        let mut registry = MetricsRegistry::new();
        let mut dropped = 0u64;
        for mut buffer in buffers {
            dropped += buffer.drain_into(&mut records, &mut registry);
        }
        // Stable by construction: buffers arrive in source order and each is
        // chronological, so sorting by interval alone interleaves sources
        // deterministically (fleet events first within an interval, then nodes).
        records.sort_by_key(|r| r.interval);
        EventLog {
            level,
            records,
            dropped,
            registry,
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log retains no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The log's merged counters (these count every emitted event, including records
    /// the rings dropped).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Folds the log into the outcome-attached rollup.
    pub fn summary(&self) -> ObsSummary {
        let counters = EventKind::ALL
            .iter()
            .filter(|k| self.registry.count(**k) > 0)
            .map(|k| ObsCounter {
                name: k.name().to_string(),
                count: self.registry.count(*k),
                weighted: self.registry.weighted(*k),
            })
            .collect();
        ObsSummary {
            level: self.level,
            events_recorded: self.registry.total(),
            events_weighted: self.registry.total_weighted(),
            events_dropped: self.dropped,
            counters,
        }
    }

    /// Writes the log as JSON Lines: one [`EventRecord`] object per line, in stream
    /// order. This is the format `pliant-trace` reads back.
    pub fn write_jsonl(&self, w: &mut dyn Write) -> io::Result<()> {
        for record in &self.records {
            let line = serde_json::to_string(record)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            writeln!(w, "{line}")?;
        }
        Ok(())
    }

    /// The JSONL export as one string (used by the byte-identity tests).
    pub fn to_jsonl_string(&self) -> String {
        let mut out = Vec::new();
        // pliant-lint: allow(panic-hygiene): writing to a Vec<u8> cannot fail and
        // every Event serializes (plain enums and floats).
        self.write_jsonl(&mut out).expect("in-memory write");
        // pliant-lint: allow(panic-hygiene): serde_json output is valid UTF-8.
        String::from_utf8(out).expect("serde_json emits UTF-8")
    }

    /// Writes the log in Chrome trace-event JSON (the `traceEvents` array format).
    /// Open the file in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`:
    /// each source becomes a track (`tid` 0 is the fleet coordinator, `tid i + 1` is
    /// instance `i`), every event an instant with its payload under `args`, and the
    /// interval summaries additionally drive counter tracks (active nodes, offered
    /// load, violating node-intervals).
    pub fn write_chrome_trace(&self, w: &mut dyn Write) -> io::Result<()> {
        let to_io = |e: serde::Error| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        writeln!(w, "{{\"traceEvents\":[")?;
        let mut first = true;
        for record in &self.records {
            let ts_us = record.time_s * 1e6;
            let args = serde_json::to_value(&record.event).map_err(to_io)?;
            // Events serialize externally tagged: {"Kind": {fields...}} (or a bare
            // string for fieldless kinds); unwrap the tag into name + args.
            let (name, fields) = match &args {
                serde::Value::Object(entries) if entries.len() == 1 => {
                    (entries[0].0.clone(), entries[0].1.clone())
                }
                _ => (record.event.kind().name().to_string(), args.clone()),
            };
            let mut arg_entries = match fields {
                serde::Value::Object(entries) => entries,
                other => vec![("value".to_string(), other)],
            };
            arg_entries.push((
                "weight".to_string(),
                serde::Value::UInt(u64::from(record.weight)),
            ));
            arg_entries.push((
                "interval".to_string(),
                serde::Value::UInt(u64::from(record.interval)),
            ));
            let instant = serde::Value::Object(vec![
                ("name".to_string(), serde::Value::Str(name)),
                ("ph".to_string(), serde::Value::Str("i".to_string())),
                ("s".to_string(), serde::Value::Str("t".to_string())),
                ("ts".to_string(), serde::Value::Float(ts_us)),
                ("pid".to_string(), serde::Value::UInt(0)),
                (
                    "tid".to_string(),
                    serde::Value::UInt(u64::from(record.source)),
                ),
                ("args".to_string(), serde::Value::Object(arg_entries)),
            ]);
            if !first {
                writeln!(w, ",")?;
            }
            first = false;
            write!(w, "{}", serde_json::to_string(&instant).map_err(to_io)?)?;
            if let Event::IntervalSummary {
                active_nodes,
                total_load,
                violating,
                ..
            } = record.event
            {
                for (counter, value) in [
                    ("active_nodes", active_nodes as f64),
                    ("total_offered_load", total_load),
                    ("violating_node_intervals", violating as f64),
                ] {
                    let c = serde::Value::Object(vec![
                        ("name".to_string(), serde::Value::Str(counter.to_string())),
                        ("ph".to_string(), serde::Value::Str("C".to_string())),
                        ("ts".to_string(), serde::Value::Float(ts_us)),
                        ("pid".to_string(), serde::Value::UInt(0)),
                        ("tid".to_string(), serde::Value::UInt(0)),
                        (
                            "args".to_string(),
                            serde::Value::Object(vec![(
                                "value".to_string(),
                                serde::Value::Float(value),
                            )]),
                        ),
                    ]);
                    writeln!(w, ",")?;
                    write!(w, "{}", serde_json::to_string(&c).map_err(to_io)?)?;
                }
            }
        }
        writeln!(w, "\n]}}")?;
        Ok(())
    }
}

/// Export formats for a merged [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// Write nothing (the default sink; recording at [`ObsLevel::Off`] makes even
    /// the in-memory half free).
    Null,
    /// JSON Lines, one [`EventRecord`] per line (`pliant-trace` input).
    Jsonl,
    /// Chrome trace-event JSON (Perfetto / `chrome://tracing`).
    ChromeTrace,
}

impl SinkFormat {
    /// Picks a format from a path extension: `.json` means Chrome trace-event JSON,
    /// anything else (conventionally `.jsonl`) means JSON Lines.
    pub fn for_path(path: &str) -> SinkFormat {
        if path.ends_with(".json") {
            SinkFormat::ChromeTrace
        } else {
            SinkFormat::Jsonl
        }
    }

    /// Writes `log` to `w` in this format ([`SinkFormat::Null`] writes nothing).
    pub fn write(&self, log: &EventLog, w: &mut dyn Write) -> io::Result<()> {
        match self {
            SinkFormat::Null => Ok(()),
            SinkFormat::Jsonl => log.write_jsonl(w),
            SinkFormat::ChromeTrace => log.write_chrome_trace(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decision(node: u32) -> Event {
        Event::ControllerDecision {
            node,
            app: 0,
            signal_p99_s: 0.01,
            slack: -0.1,
            action: ObsAction::SetVariant,
        }
    }

    #[test]
    fn off_level_records_nothing() {
        let mut b = ObsBuffer::new(ObsLevel::Off, 1, 1, 128);
        b.emit(0, 0.0, decision(0));
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.registry().total(), 0);
    }

    #[test]
    fn decisions_level_filters_full_only_events() {
        let mut b = ObsBuffer::new(ObsLevel::Decisions, 1, 1, 128);
        b.emit(
            0,
            0.0,
            Event::BalancerDispatch {
                node: 0,
                assigned_load: 0.5,
            },
        );
        b.emit(0, 0.0, decision(0));
        assert_eq!(b.len(), 1);
        assert_eq!(b.registry().count(EventKind::BalancerDispatch), 0);
        assert_eq!(b.registry().count(EventKind::ControllerDecision), 1);
        let mut full = ObsBuffer::new(ObsLevel::Full, 1, 1, 128);
        full.emit(
            0,
            0.0,
            Event::BalancerDispatch {
                node: 0,
                assigned_load: 0.5,
            },
        );
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn ring_retains_the_most_recent_records_and_counts_drops() {
        let mut b = ObsBuffer::new(ObsLevel::Decisions, 1, 1, 4);
        for i in 0..10u32 {
            b.emit(i, i as f64, decision(i));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6);
        // Counters are exempt from retention.
        assert_eq!(b.registry().count(EventKind::ControllerDecision), 10);
        let log = EventLog::merge(ObsLevel::Decisions, [b]);
        let intervals: Vec<u32> = log.records.iter().map(|r| r.interval).collect();
        assert_eq!(intervals, vec![6, 7, 8, 9], "ring keeps the newest records");
        assert_eq!(log.dropped, 6);
    }

    #[test]
    fn merge_interleaves_sources_deterministically() {
        let mut fleet = ObsBuffer::new(ObsLevel::Decisions, 0, 1, 64);
        let mut n0 = ObsBuffer::new(ObsLevel::Decisions, 1, 1, 64);
        let mut n1 = ObsBuffer::new(ObsLevel::Decisions, 2, 3, 64);
        for interval in 0..3u32 {
            n1.emit(interval, interval as f64, decision(1));
            n0.emit(interval, interval as f64, decision(0));
            fleet.emit(
                interval,
                interval as f64,
                Event::IntervalSummary {
                    active_nodes: 2,
                    total_load: 1.0,
                    busy: 4,
                    violating: 0,
                    jobs_placed: 0,
                },
            );
        }
        // Buffer order is source order regardless of emission order above.
        let log = EventLog::merge(ObsLevel::Decisions, [fleet, n0, n1]);
        let sources: Vec<u32> = log.records.iter().map(|r| r.source).collect();
        assert_eq!(sources, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        assert_eq!(log.records[2].weight, 3, "representative weight is tagged");
        let summary = log.summary();
        assert_eq!(summary.events_recorded, 9);
        // 3 fleet summaries (weight 1) + 3 weight-1 + 3 weight-3 decisions.
        assert_eq!(summary.events_weighted, 3 + 3 + 9);
        assert_eq!(
            summary
                .counter(EventKind::ControllerDecision)
                .map(|c| c.weighted),
            Some(12)
        );
    }

    #[test]
    fn event_records_round_trip_through_jsonl() {
        let mut b = ObsBuffer::new(ObsLevel::Decisions, 3, 2, 64);
        b.emit(
            5,
            5.0,
            Event::AutoscalerTransition {
                node: 2,
                from: PowerStateKind::Active,
                to: PowerStateKind::Draining,
                trigger: ScaleTrigger::ScaleIn,
            },
        );
        b.emit(
            6,
            6.0,
            Event::JobCompleted {
                node: 2,
                slot: 1,
                weight: 4,
                inaccuracy_pct: 2.5,
            },
        );
        let log = EventLog::merge(ObsLevel::Decisions, [b]);
        let jsonl = log.to_jsonl_string();
        let parsed: Vec<EventRecord> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).expect("every line parses"))
            .collect();
        assert_eq!(parsed, log.records);
    }

    #[test]
    fn chrome_trace_is_wellformed_json_with_one_entry_per_record() {
        let mut b = ObsBuffer::new(ObsLevel::Decisions, 0, 1, 64);
        b.emit(0, 1.0, decision(0));
        b.emit(
            1,
            2.0,
            Event::IntervalSummary {
                active_nodes: 4,
                total_load: 2.5,
                busy: 4,
                violating: 1,
                jobs_placed: 2,
            },
        );
        let log = EventLog::merge(ObsLevel::Decisions, [b]);
        let mut out = Vec::new();
        log.write_chrome_trace(&mut out).expect("in-memory write");
        let text = String::from_utf8(out).expect("UTF-8");
        let value: serde::Value = serde_json::from_str(&text).expect("well-formed JSON");
        let serde::Value::Object(entries) = value else {
            panic!("chrome trace is an object");
        };
        let (_, events) = &entries[0];
        let serde::Value::Array(events) = events else {
            panic!("traceEvents is an array");
        };
        // 2 instants + 3 counter samples from the interval summary.
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn summaries_round_trip_and_default_for_legacy_archives() {
        let summary = ObsSummary {
            level: ObsLevel::Decisions,
            events_recorded: 10,
            events_weighted: 40,
            events_dropped: 2,
            counters: vec![ObsCounter {
                name: "QosViolation".to_string(),
                count: 10,
                weighted: 40,
            }],
        };
        let json = serde_json::to_string(&summary).expect("serializable");
        let back: ObsSummary = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(back, summary);
        let legacy: ObsSummary = serde_json::from_str("{}").expect("empty object");
        assert_eq!(legacy, ObsSummary::default());
        assert_eq!(legacy.level, ObsLevel::Off);
    }

    #[test]
    fn sink_format_is_picked_from_the_extension() {
        assert_eq!(SinkFormat::for_path("x.json"), SinkFormat::ChromeTrace);
        assert_eq!(SinkFormat::for_path("x.jsonl"), SinkFormat::Jsonl);
        assert_eq!(SinkFormat::for_path("trace"), SinkFormat::Jsonl);
    }
}
