//! Telemetry primitives for the Pliant reproduction.
//!
//! This crate provides the measurement substrate every other crate builds on:
//!
//! * [`histogram::LatencyHistogram`] — a log-bucketed histogram with percentile queries,
//!   used by the performance monitor to estimate tail latency (p95/p99/p999).
//! * [`stats`] — streaming summary statistics (mean/variance/min/max) and
//!   [`stats::Summary`] snapshots.
//! * [`window`] — sliding-window and exponentially-weighted latency trackers used for
//!   adaptive sampling in the monitor.
//! * [`series`] — a time-series recorder used by the experiment harness to regenerate the
//!   paper's dynamic-behaviour figures (Fig. 4 and Fig. 6).
//! * [`violin`] — distribution summaries (min/max/quartiles/density) matching the violin
//!   plots of Fig. 7.
//! * [`rng`] — deterministic random-number helpers and the samplers (exponential, Poisson,
//!   lognormal, Pareto) the workload generators and queueing models rely on.
//! * [`obs`] — the deterministic tracing subsystem: typed sim-time [`obs::Event`]s,
//!   per-source ring buffers, counter registries, and the JSONL / Chrome-trace sinks
//!   behind the `--trace` flags and the `pliant-trace` CLI.
//!
//! # Example
//!
//! ```
//! use pliant_telemetry::histogram::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for i in 1..=1000u64 {
//!     h.record(i as f64);
//! }
//! let p99 = h.percentile(0.99);
//! assert!(p99 >= 980.0 && p99 <= 1000.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fastmath;
pub mod histogram;
pub mod obs;
pub mod rng;
pub mod series;
pub mod stats;
pub mod violin;
pub mod window;

pub use histogram::LatencyHistogram;
pub use series::{TimePoint, TimeSeries};
pub use stats::{OnlineStats, Summary};
pub use violin::ViolinSummary;
pub use window::{EwmaTracker, SlidingWindow};
