//! Distribution summaries matching the paper's violin plots (Fig. 7).
//!
//! A [`ViolinSummary`] captures the min/max whiskers, quartiles, mean, and a smoothed
//! density profile for a set of samples, which is exactly what is needed to regenerate the
//! violin plots comparing 1-, 2-, and 3-way colocations.

use serde::{Deserialize, Serialize};

use crate::stats::exact_quantile;

/// Summary of a sample distribution: extremes, quartiles, mean, and a kernel-density
/// profile evaluated on a uniform grid.
///
/// # Example
///
/// ```
/// use pliant_telemetry::violin::ViolinSummary;
///
/// let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
/// let v = ViolinSummary::from_samples("latency", &samples, 16);
/// assert_eq!(v.count, 100);
/// assert!(v.min <= v.q1 && v.q1 <= v.median && v.median <= v.q3 && v.q3 <= v.max);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ViolinSummary {
    /// Label of the metric (e.g. "tail latency / QoS").
    pub label: String,
    /// Number of samples summarized.
    pub count: usize,
    /// Minimum sample (lower whisker / violin limit).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum sample (upper whisker / violin limit).
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Grid positions (values) at which the density profile is evaluated.
    pub grid: Vec<f64>,
    /// Relative density at each grid position, normalized to a maximum of 1.0.
    pub density: Vec<f64>,
}

impl ViolinSummary {
    /// Builds a summary from raw samples.
    ///
    /// `grid_points` controls the resolution of the density profile; values below 2 are
    /// clamped to 2. Returns a degenerate all-zero summary when `samples` is empty.
    pub fn from_samples(label: impl Into<String>, samples: &[f64], grid_points: usize) -> Self {
        let label = label.into();
        if samples.is_empty() {
            return Self {
                label,
                count: 0,
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                grid: Vec::new(),
                density: Vec::new(),
            };
        }
        let grid_points = grid_points.max(2);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let q1 = exact_quantile(samples, 0.25).unwrap_or(min);
        let median = exact_quantile(samples, 0.50).unwrap_or(mean);
        let q3 = exact_quantile(samples, 0.75).unwrap_or(max);

        // Gaussian kernel density on a uniform grid; Silverman's rule-of-thumb bandwidth.
        let n = samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(1.0);
        let sd = var.sqrt();
        let span = (max - min).max(1e-12);
        let bandwidth = if sd > 0.0 {
            1.06 * sd * n.powf(-0.2)
        } else {
            span / grid_points as f64
        }
        .max(span / (4.0 * grid_points as f64));

        let mut grid = Vec::with_capacity(grid_points);
        let mut density = Vec::with_capacity(grid_points);
        for i in 0..grid_points {
            let x = min + span * i as f64 / (grid_points - 1) as f64;
            let mut d = 0.0;
            for &s in samples {
                let z = (x - s) / bandwidth;
                d += (-0.5 * z * z).exp();
            }
            grid.push(x);
            density.push(d);
        }
        let dmax = density.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        for d in &mut density {
            *d /= dmax;
        }

        Self {
            label,
            count: samples.len(),
            min,
            q1,
            median,
            q3,
            max,
            mean,
            grid,
            density,
        }
    }

    /// Interquartile range (`q3 - q1`), a dispersion measure used in the evaluation to show
    /// that inaccuracy becomes "more centralized" as more applications are colocated.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Full range (`max - min`).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_samples_give_degenerate_summary() {
        let v = ViolinSummary::from_samples("x", &[], 8);
        assert_eq!(v.count, 0);
        assert_eq!(v.range(), 0.0);
        assert!(v.grid.is_empty());
    }

    #[test]
    fn quartiles_ordered_and_in_range() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 31) % 97) as f64).collect();
        let v = ViolinSummary::from_samples("lat", &samples, 32);
        assert!(v.min <= v.q1);
        assert!(v.q1 <= v.median);
        assert!(v.median <= v.q3);
        assert!(v.q3 <= v.max);
        assert!(v.mean >= v.min && v.mean <= v.max);
        assert_eq!(v.grid.len(), 32);
        assert_eq!(v.density.len(), 32);
    }

    #[test]
    fn density_normalized_to_one() {
        let samples: Vec<f64> = (0..200).map(|i| (i as f64 / 10.0).sin() + 2.0).collect();
        let v = ViolinSummary::from_samples("lat", &samples, 24);
        let dmax = v.density.iter().cloned().fold(0.0f64, f64::max);
        assert!((dmax - 1.0).abs() < 1e-9);
        assert!(v.density.iter().all(|d| *d >= 0.0 && *d <= 1.0 + 1e-9));
    }

    #[test]
    fn constant_samples_are_handled() {
        let v = ViolinSummary::from_samples("const", &[5.0; 50], 8);
        assert_eq!(v.min, 5.0);
        assert_eq!(v.max, 5.0);
        assert_eq!(v.iqr(), 0.0);
        assert!(v.density.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn narrower_distribution_has_smaller_iqr() {
        let wide: Vec<f64> = (0..300).map(|i| (i % 100) as f64).collect();
        let narrow: Vec<f64> = (0..300).map(|i| 50.0 + (i % 10) as f64).collect();
        let vw = ViolinSummary::from_samples("wide", &wide, 16);
        let vn = ViolinSummary::from_samples("narrow", &narrow, 16);
        assert!(vn.iqr() < vw.iqr());
        assert!(vn.range() < vw.range());
    }

    proptest! {
        #[test]
        fn prop_summary_invariants(samples in proptest::collection::vec(0.0f64..1e4, 1..300)) {
            let v = ViolinSummary::from_samples("p", &samples, 16);
            prop_assert_eq!(v.count, samples.len());
            prop_assert!(v.min <= v.median && v.median <= v.max);
            prop_assert!(v.iqr() >= 0.0);
            prop_assert!(v.range() >= 0.0);
            prop_assert!(v.density.iter().all(|d| d.is_finite()));
        }
    }
}
