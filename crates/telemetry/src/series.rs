//! Time-series recording for dynamic-behaviour experiments.
//!
//! The paper's Fig. 4 and Fig. 6 plot tail latency, reclaimed cores, and the active
//! approximate variant over wall-clock time. The experiment harness records one
//! [`TimePoint`] per decision interval into a [`TimeSeries`] and the figure binaries dump
//! the series as CSV/JSON rows.

use serde::{Deserialize, Serialize};

/// A single labelled sample in a time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Time of the sample, in seconds since the start of the experiment.
    pub time_s: f64,
    /// Sample value (unit depends on the series).
    pub value: f64,
}

/// A named sequence of [`TimePoint`]s.
///
/// # Example
///
/// ```
/// use pliant_telemetry::series::TimeSeries;
///
/// let mut s = TimeSeries::new("p99_latency_ms");
/// s.push(0.0, 4.2);
/// s.push(1.0, 5.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.max_value(), Some(5.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    name: String,
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates an empty series pre-sized for `capacity` points, for recording loops
    /// whose length is known up front (e.g. one point per decision interval).
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        Self {
            name: name.into(),
            points: Vec::with_capacity(capacity),
        }
    }

    /// Name of the series.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample.
    pub fn push(&mut self, time_s: f64, value: f64) {
        self.points.push(TimePoint { time_s, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points, in insertion order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Values only, in insertion order.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Largest recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Smallest recorded value.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Mean of the recorded values.
    pub fn mean_value(&self) -> Option<f64> {
        if self.points.is_empty() {
            None
        } else {
            Some(self.points.iter().map(|p| p.value).sum::<f64>() / self.points.len() as f64)
        }
    }

    /// Fraction of points whose value is strictly greater than `threshold`.
    ///
    /// Used to report how often a service's tail latency exceeded its QoS target.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let above = self.points.iter().filter(|p| p.value > threshold).count();
        above as f64 / self.points.len() as f64
    }

    /// Renders the series as CSV rows (`time_s,value` with a header line).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,value\n");
        for p in &self.points {
            out.push_str(&format!("{:.6},{:.6}\n", p.time_s, p.value));
        }
        out
    }
}

/// A bundle of related time series captured by one experiment run (e.g. tail latency +
/// reclaimed cores + active variant index).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceBundle {
    series: Vec<TimeSeries>,
}

impl TraceBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a series to the bundle.
    pub fn insert(&mut self, series: TimeSeries) {
        self.series.push(series);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// All series in insertion order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Number of series held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the bundle holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic_accessors() {
        let mut s = TimeSeries::new("lat");
        assert!(s.is_empty());
        assert_eq!(s.max_value(), None);
        assert_eq!(s.min_value(), None);
        assert_eq!(s.mean_value(), None);
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        s.push(2.0, 20.0);
        assert_eq!(s.name(), "lat");
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_value(), Some(30.0));
        assert_eq!(s.min_value(), Some(10.0));
        assert_eq!(s.mean_value(), Some(20.0));
        assert_eq!(s.values(), vec![10.0, 30.0, 20.0]);
    }

    #[test]
    fn fraction_above_threshold() {
        let mut s = TimeSeries::new("lat");
        for (t, v) in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0), (3.0, 7.0)] {
            s.push(t, v);
        }
        assert!((s.fraction_above(4.0) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_above(100.0), 0.0);
        assert_eq!(TimeSeries::new("x").fraction_above(0.0), 0.0);
    }

    #[test]
    fn csv_rendering_has_header_and_rows() {
        let mut s = TimeSeries::new("lat");
        s.push(0.0, 1.5);
        let csv = s.to_csv();
        assert!(csv.starts_with("time_s,value\n"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn bundle_lookup_by_name() {
        let mut b = TraceBundle::new();
        assert!(b.is_empty());
        b.insert(TimeSeries::new("a"));
        b.insert(TimeSeries::new("b"));
        assert_eq!(b.len(), 2);
        assert!(b.get("a").is_some());
        assert!(b.get("missing").is_none());
        assert_eq!(b.series()[1].name(), "b");
    }
}
