//! Deterministic random-number helpers and samplers.
//!
//! Every stochastic component in the reproduction (request arrivals, service-time noise,
//! kernel input generation) draws from a seeded [`rand::rngs::SmallRng`] created through
//! this module, so experiment results are reproducible run-to-run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from an explicit seed.
///
/// # Example
///
/// ```
/// use pliant_telemetry::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a sub-seed from a parent seed and a stream label.
///
/// Used to give each component of an experiment (arrival process, service times, kernel
/// input, controller jitter) an independent but reproducible stream.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well-distributed, deterministic.
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples an exponentially-distributed value with the given rate (events per unit time).
///
/// Used for Poisson-process inter-arrival times in the open-loop workload generators.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for small means and a normal approximation for large
/// means (>64), which is plenty accurate for request-count-per-tick sampling.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let g = sample_standard_normal(rng);
        let v = mean + mean.sqrt() * g + 0.5;
        return v.max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a lognormal variate parameterized by the *median* and the shape `sigma` (the
/// standard deviation of the underlying normal).
///
/// Service-time distributions of interactive cloud services are heavy-tailed; a lognormal
/// body is a standard modelling choice and produces realistic p99/p50 ratios.
///
/// # Panics
///
/// Panics if `median` is not strictly positive or `sigma` is negative.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "lognormal median must be positive");
    assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
    let n = sample_standard_normal(rng);
    median * (sigma * n).exp()
}

/// Samples a bounded Pareto variate with shape `alpha` on `[min, max]`.
///
/// Used to inject occasional very slow requests (e.g. MongoDB disk stalls) into the
/// discrete-event simulator.
///
/// # Panics
///
/// Panics if the bounds are not `0 < min < max` or `alpha <= 0`.
pub fn sample_bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, min: f64, max: f64) -> f64 {
    assert!(min > 0.0 && max > min, "require 0 < min < max");
    assert!(alpha > 0.0, "alpha must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let ha = max.powf(alpha);
    let la = min.powf(alpha);
    let x = -(u * ha - u * la - ha) / (ha * la);
    x.powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..10 {
            assert_eq!(rand::Rng::gen::<u64>(&mut a), rand::Rng::gen::<u64>(&mut b));
        }
    }

    #[test]
    fn derive_seed_varies_with_stream() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(derive_seed(42, 0), s1);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = seeded_rng(7);
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_parameter() {
        let mut rng = seeded_rng(11);
        for &lambda in &[0.5, 3.0, 20.0, 150.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() / lambda.max(1.0) < 0.05,
                "lambda {lambda} produced mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn lognormal_median_is_approximately_parameter() {
        let mut rng = seeded_rng(5);
        let mut v: Vec<f64> = (0..20_001)
            .map(|_| sample_lognormal(&mut rng, 10.0, 0.5))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 10.0).abs() / 10.0 < 0.05, "median {median}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut rng = seeded_rng(5);
        for _ in 0..10 {
            assert!((sample_lognormal(&mut rng, 3.0, 0.0) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut rng = seeded_rng(9);
        for _ in 0..5_000 {
            let x = sample_bounded_pareto(&mut rng, 1.5, 1.0, 100.0);
            assert!(
                (1.0 - 1e-9..=100.0 + 1e-9).contains(&x),
                "out of bounds: {x}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let mut rng = seeded_rng(1);
        let _ = sample_exponential(&mut rng, 0.0);
    }

    proptest! {
        #[test]
        fn prop_exponential_positive(seed in 0u64..1000, rate in 0.01f64..100.0) {
            let mut rng = seeded_rng(seed);
            let x = sample_exponential(&mut rng, rate);
            prop_assert!(x > 0.0);
            prop_assert!(x.is_finite());
        }

        #[test]
        fn prop_lognormal_positive(seed in 0u64..1000, median in 0.01f64..1e4, sigma in 0.0f64..2.0) {
            let mut rng = seeded_rng(seed);
            let x = sample_lognormal(&mut rng, median, sigma);
            prop_assert!(x > 0.0);
            prop_assert!(x.is_finite());
        }
    }
}
