//! Deterministic random-number helpers and samplers.
//!
//! Every stochastic component in the reproduction (request arrivals, service-time noise,
//! kernel input generation) draws from a seeded [`rand::rngs::SmallRng`] created through
//! this module, so experiment results are reproducible run-to-run.

use std::sync::OnceLock;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fastmath::{fast_exp, fast_ln};

/// Creates a deterministic RNG from an explicit seed.
///
/// # Example
///
/// ```
/// use pliant_telemetry::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a sub-seed from a parent seed and a stream label.
///
/// Used to give each component of an experiment (arrival process, service times, kernel
/// input, controller jitter) an independent but reproducible stream.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 finalizer over the combined value: cheap, well-distributed, deterministic.
    let mut z = parent
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Captures an RNG's internal state as the wire form checkpoints archive (the offline
/// serde shim cannot round-trip fixed arrays, so snapshots carry a `Vec<u64>`).
pub fn rng_state_words(rng: &SmallRng) -> Vec<u64> {
    rng.state().to_vec()
}

/// Rebuilds an RNG from a state captured by [`rng_state_words`], continuing the stream
/// exactly where the snapshot left off. Rejects wire states of the wrong width and the
/// all-zero state (a fixed point of xoshiro256++ that a live RNG can never reach).
pub fn rng_from_state_words(words: &[u64]) -> Result<SmallRng, String> {
    let state: [u64; 4] = words
        .try_into()
        .map_err(|_| format!("rng state must be 4 words, got {}", words.len()))?;
    if state.iter().all(|&w| w == 0) {
        return Err("rng state must not be all-zero".to_string());
    }
    Ok(SmallRng::from_state(state))
}

/// Samples an exponentially-distributed value with the given rate (events per unit time).
///
/// Used for Poisson-process inter-arrival times in the open-loop workload generators.
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Samples a Poisson-distributed count with the given mean.
///
/// Uses Knuth's multiplication method for small means and a normal approximation for large
/// means (>64), which is plenty accurate for request-count-per-tick sampling.
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 64.0 {
        // Normal approximation with continuity correction.
        let g = sample_standard_normal(rng);
        let v = mean + mean.sqrt() * g + 0.5;
        return v.max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0f64..1.0);
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0f64..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a lognormal variate parameterized by the *median* and the shape `sigma` (the
/// standard deviation of the underlying normal).
///
/// Service-time distributions of interactive cloud services are heavy-tailed; a lognormal
/// body is a standard modelling choice and produces realistic p99/p50 ratios.
///
/// # Panics
///
/// Panics if `median` is not strictly positive or `sigma` is negative.
pub fn sample_lognormal<R: Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "lognormal median must be positive");
    assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
    let n = sample_standard_normal(rng);
    median * (sigma * n).exp()
}

/// Number of ziggurat layers (one base strip including the tail plus 255 stacked
/// rectangles of equal area).
const ZIG_LAYERS: usize = 256;
/// Right edge of the base strip of the 256-layer normal ziggurat.
const ZIG_R: f64 = 3.654_152_885_361_009;
/// Common area of every ziggurat region (rectangle or base strip plus tail).
const ZIG_V: f64 = 4.928_673_233_974_655e-3;

/// Precomputed ziggurat edges `x[i]` and densities `f[i] = exp(-x[i]^2 / 2)`.
struct ZigTables {
    x: [f64; ZIG_LAYERS + 1],
    f: [f64; ZIG_LAYERS + 1],
}

/// Builds the ziggurat tables once per process via the standard downward recurrence
/// `x[i] = f^-1(V / x[i-1] + f(x[i-1]))`; `x[0]` is the base strip's pseudo-edge
/// `V / f(R)` (> R) so one uniform draw covers both the strip and the tail branch.
fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let pdf = |v: f64| (-0.5 * v * v).exp();
        let mut x = [0.0; ZIG_LAYERS + 1];
        x[0] = ZIG_V / pdf(ZIG_R);
        x[1] = ZIG_R;
        for i in 2..ZIG_LAYERS {
            x[i] = (-2.0 * (ZIG_V / x[i - 1] + pdf(x[i - 1])).ln()).sqrt();
        }
        x[ZIG_LAYERS] = 0.0;
        let mut f = [0.0; ZIG_LAYERS + 1];
        for i in 0..=ZIG_LAYERS {
            f[i] = pdf(x[i]);
        }
        ZigTables { x, f }
    })
}

/// Samples a standard normal variate with the 256-layer ziggurat algorithm
/// (Marsaglia–Tsang).
///
/// This is the hot-path normal sampler: the common case costs one 64-bit RNG draw, one
/// table lookup, one multiply, and one compare (~98% of draws), versus a logarithm, a
/// square root, and a cosine for the Box–Muller sampler in
/// [`sample_standard_normal`]. The two samplers produce the same distribution but
/// different streams; Box–Muller is kept for the calibrated kernel and noise streams
/// whose historical sequences tests pin, while batch sample generation uses this one.
pub fn sample_normal_ziggurat<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    loop {
        // One draw provides the layer (low 8 bits), the sign (bit 8), and a 53-bit
        // uniform (bits 11..64) — all independent.
        let bits: u64 = rng.gen();
        let i = (bits & 0xff) as usize;
        let sign = if bits & 0x100 == 0 { 1.0 } else { -1.0 };
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * t.x[i];
        // Wholly inside the layer's inner rectangle: accept immediately.
        if x < t.x[i + 1] {
            return sign * x;
        }
        if i == 0 {
            // Base strip: x in [R, x[0]) selects the tail (Marsaglia's exponential
            // rejection; a zero uniform yields an infinite candidate and is rejected).
            loop {
                let u1: f64 = rng.gen();
                let u2: f64 = rng.gen();
                let xt = -fast_ln(u1) / ZIG_R;
                let yt = -fast_ln(u2);
                if xt.is_finite() && 2.0 * yt >= xt * xt {
                    return sign * (ZIG_R + xt);
                }
            }
        }
        // Wedge: x in [x[i+1], x[i]); accept with probability proportional to the
        // density overhang above the layer's flat top.
        let y = t.f[i] + (t.f[i + 1] - t.f[i]) * rng.gen::<f64>();
        if y < fast_exp(-0.5 * x * x) {
            return sign * x;
        }
    }
}

/// Clears `out` and fills it with `n` lognormal samples parameterized like
/// [`sample_lognormal`] (median and shape `sigma`).
///
/// This is the batch sampler the co-location hot path uses for per-interval latency
/// sample generation: ziggurat normals plus the polynomial
/// [`fast_exp`], roughly 3x faster per sample than
/// [`sample_lognormal`]'s Box–Muller + `libm` pipeline. Identical distribution,
/// different stream.
///
/// # Panics
///
/// Panics if `median` is not strictly positive or `sigma` is negative.
pub fn fill_lognormals<R: Rng + ?Sized>(
    rng: &mut R,
    median: f64,
    sigma: f64,
    n: usize,
    out: &mut Vec<f64>,
) {
    assert!(median > 0.0, "lognormal median must be positive");
    assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
    out.clear();
    out.reserve(n);
    for _ in 0..n {
        let z = sample_normal_ziggurat(rng);
        out.push(median * fast_exp(sigma * z));
    }
}

/// Samples a bounded Pareto variate with shape `alpha` on `[min, max]`.
///
/// Used to inject occasional very slow requests (e.g. MongoDB disk stalls) into the
/// discrete-event simulator.
///
/// # Panics
///
/// Panics if the bounds are not `0 < min < max` or `alpha <= 0`.
pub fn sample_bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, min: f64, max: f64) -> f64 {
    assert!(min > 0.0 && max > min, "require 0 < min < max");
    assert!(alpha > 0.0, "alpha must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let ha = max.powf(alpha);
    let la = min.powf(alpha);
    let x = -(u * ha - u * la - ha) / (ha * la);
    x.powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(123);
        let mut b = seeded_rng(123);
        for _ in 0..10 {
            assert_eq!(rand::Rng::gen::<u64>(&mut a), rand::Rng::gen::<u64>(&mut b));
        }
    }

    #[test]
    fn derive_seed_varies_with_stream() {
        let s1 = derive_seed(42, 0);
        let s2 = derive_seed(42, 1);
        let s3 = derive_seed(43, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(derive_seed(42, 0), s1);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = seeded_rng(7);
        let rate = 4.0;
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| sample_exponential(&mut rng, rate))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_parameter() {
        let mut rng = seeded_rng(11);
        for &lambda in &[0.5, 3.0, 20.0, 150.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() / lambda.max(1.0) < 0.05,
                "lambda {lambda} produced mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn lognormal_median_is_approximately_parameter() {
        let mut rng = seeded_rng(5);
        let mut v: Vec<f64> = (0..20_001)
            .map(|_| sample_lognormal(&mut rng, 10.0, 0.5))
            .collect();
        v.sort_unstable_by(f64::total_cmp);
        let median = v[v.len() / 2];
        assert!((median - 10.0).abs() / 10.0 < 0.05, "median {median}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let mut rng = seeded_rng(5);
        for _ in 0..10 {
            assert!((sample_lognormal(&mut rng, 3.0, 0.0) - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_pareto_within_bounds() {
        let mut rng = seeded_rng(9);
        for _ in 0..5_000 {
            let x = sample_bounded_pareto(&mut rng, 1.5, 1.0, 100.0);
            assert!(
                (1.0 - 1e-9..=100.0 + 1e-9).contains(&x),
                "out of bounds: {x}"
            );
        }
    }

    #[test]
    fn ziggurat_layers_have_equal_area() {
        // Every region of the ziggurat must have area V: the base strip plus tail, and
        // each stacked rectangle x[i] * (f(x[i+1]) - f(x[i])).
        let t = zig_tables();
        for i in 1..ZIG_LAYERS {
            let area = t.x[i] * (t.f[i + 1] - t.f[i]);
            assert!(
                (area - ZIG_V).abs() / ZIG_V < 1e-7,
                "layer {i} area {area} != {ZIG_V}"
            );
        }
        // Edges must descend strictly from the pseudo-edge to zero.
        assert!(t.x[0] > t.x[1]);
        for i in 1..ZIG_LAYERS {
            assert!(t.x[i] > t.x[i + 1], "edges must strictly decrease at {i}");
        }
        assert_eq!(t.x[ZIG_LAYERS], 0.0);
        assert_eq!(t.f[ZIG_LAYERS], 1.0);
    }

    #[test]
    fn ziggurat_matches_the_standard_normal_distribution() {
        let mut rng = seeded_rng(314);
        let n = 400_000;
        let mut v: Vec<f64> = (0..n).map(|_| sample_normal_ziggurat(&mut rng)).collect();
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
        v.sort_unstable_by(f64::total_cmp);
        // Quantiles of the standard normal: median 0, p90 1.2816, p99 2.3263,
        // p999 3.0902 (exercises the wedge and tail branches).
        let q = |p: f64| v[(p * n as f64) as usize];
        assert!(q(0.5).abs() < 0.02, "median {}", q(0.5));
        assert!((q(0.9) - 1.2816).abs() < 0.03, "p90 {}", q(0.9));
        assert!((q(0.99) - 2.3263).abs() < 0.06, "p99 {}", q(0.99));
        assert!((q(0.999) - 3.0902).abs() < 0.15, "p999 {}", q(0.999));
        // Symmetry.
        assert!((q(0.1) + q(0.9)).abs() < 0.05);
    }

    #[test]
    fn ziggurat_is_deterministic_in_seed() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut rng = seeded_rng(seed);
            (0..100).map(|_| sample_normal_ziggurat(&mut rng)).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn fill_lognormals_matches_the_scalar_sampler_distribution() {
        let mut rng = seeded_rng(77);
        let mut batch = Vec::new();
        fill_lognormals(&mut rng, 10.0, 0.5, 50_001, &mut batch);
        assert_eq!(batch.len(), 50_001);
        assert!(batch.iter().all(|x| x.is_finite() && *x > 0.0));
        batch.sort_unstable_by(f64::total_cmp);
        let median = batch[batch.len() / 2];
        assert!((median - 10.0).abs() / 10.0 < 0.03, "median {median}");
        // p99 of lognormal(median 10, sigma 0.5): 10 * exp(0.5 * 2.3263) = 32.0.
        let p99 = batch[(0.99 * batch.len() as f64) as usize];
        assert!((p99 - 32.0).abs() / 32.0 < 0.07, "p99 {p99}");
        // Refilling reuses the buffer and replaces its contents.
        let cap_before = batch.capacity();
        fill_lognormals(&mut rng, 1.0, 0.0, 10, &mut batch);
        assert_eq!(batch.len(), 10);
        assert!(batch.iter().all(|x| (*x - 1.0).abs() < 1e-12));
        assert_eq!(batch.capacity(), cap_before, "the buffer must be reused");
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let mut rng = seeded_rng(1);
        let _ = sample_exponential(&mut rng, 0.0);
    }

    proptest! {
        #[test]
        fn prop_exponential_positive(seed in 0u64..1000, rate in 0.01f64..100.0) {
            let mut rng = seeded_rng(seed);
            let x = sample_exponential(&mut rng, rate);
            prop_assert!(x > 0.0);
            prop_assert!(x.is_finite());
        }

        #[test]
        fn prop_lognormal_positive(seed in 0u64..1000, median in 0.01f64..1e4, sigma in 0.0f64..2.0) {
            let mut rng = seeded_rng(seed);
            let x = sample_lognormal(&mut rng, median, sigma);
            prop_assert!(x > 0.0);
            prop_assert!(x.is_finite());
        }
    }
}
