//! Log-bucketed latency histogram with percentile queries.
//!
//! The performance monitor in Pliant continuously samples end-to-end request latency and
//! needs cheap, allocation-free recording plus accurate tail percentiles (p99 and above).
//! A log-bucketed histogram (HdrHistogram-style) gives bounded relative error across many
//! orders of magnitude, which matters because the three interactive services span latencies
//! from ~100 µs (memcached) to ~100 ms (MongoDB).

use serde::{Deserialize, Serialize};

/// Number of linear sub-buckets per power-of-two bucket.
///
/// 32 sub-buckets bound the relative quantization error to roughly 3%.
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two buckets; covers values up to 2^40 (~10^12), far beyond any
/// latency expressed in microseconds that the simulators produce.
const EXP_BUCKETS: usize = 40;

/// Why two histograms could not be merged: their bucket configurations differ, so their
/// bucket arrays do not describe the same value ranges and summing them would produce
/// silently wrong quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramMergeError {
    /// Bucket count of the histogram being merged into.
    pub own_buckets: usize,
    /// Bucket count of the histogram being merged from.
    pub other_buckets: usize,
}

impl std::fmt::Display for HistogramMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bucket configurations differ ({} vs {} buckets); \
             merging them would misalign value ranges",
            self.own_buckets, self.other_buckets
        )
    }
}

impl std::error::Error for HistogramMergeError {}

/// A log-bucketed histogram of non-negative `f64` values (latencies, in any unit).
///
/// Values are bucketed into `EXP_BUCKETS` powers of two, each split into `SUB_BUCKETS`
/// linear sub-buckets, giving a bounded relative error of about `1/SUB_BUCKETS`.
///
/// # Example
///
/// ```
/// use pliant_telemetry::histogram::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// h.record_many(&[1.0, 2.0, 3.0, 100.0]);
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) >= 2.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    // `None` until a value is recorded. The empty extremes must not be stored as
    // ±infinity: JSON has no encoding for non-finite floats (they serialize as
    // `null`), and an empty histogram inside a checkpoint has to survive a JSON
    // round-trip.
    min: Option<f64>,
    max: Option<f64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; SUB_BUCKETS * EXP_BUCKETS],
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Index of the bucket a value falls into.
    ///
    /// Recording is on the monitor's per-sample hot path, so the power-of-two bucket and
    /// the linear sub-bucket are read straight out of the IEEE-754 exponent and mantissa
    /// bits instead of calling `log2`: for `v` in `[2^e, 2^(e+1))` the exponent field is
    /// exactly `e + 1023` and the top `log2(SUB_BUCKETS)` mantissa bits are exactly
    /// `floor((v - 2^e) / 2^e * SUB_BUCKETS)`.
    fn bucket_index(value: f64) -> usize {
        let v = value.max(0.0); // NaN also lands here: NaN.max(0.0) == 0.0
        if v < 1.0 {
            // Values in [0, 1) map linearly onto the first power-of-two bucket.
            return (v * SUB_BUCKETS as f64) as usize % SUB_BUCKETS;
        }
        const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as usize - 1023;
        if exp >= EXP_BUCKETS {
            // Beyond the covered range: clamp into the last (open-ended) bucket.
            return EXP_BUCKETS * SUB_BUCKETS - 1;
        }
        let frac = ((bits >> (52 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        exp * SUB_BUCKETS + frac
    }

    /// Representative (upper-edge midpoint) value of a bucket, used when reporting
    /// percentiles.
    fn bucket_value(index: usize) -> f64 {
        let exp = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        if exp == 0 && sub < SUB_BUCKETS {
            // First bucket may hold sub-1.0 values recorded via the linear path; treat it
            // as the standard log bucket otherwise.
        }
        let base = 2f64.powi(exp as i32);
        base + base * (sub as f64 + 0.5) / SUB_BUCKETS as f64
    }

    /// The `[lower, upper)` edges of the bucket `value` is recorded into, in the same
    /// units as `value`.
    ///
    /// `upper - lower` is the histogram's quantization granularity at `value` — the
    /// bound within which a histogram-backed percentile can differ from the exact
    /// order-statistic of the recorded values (see [`Self::percentile`]). Exposed so
    /// callers replacing an exact sorted quantile with this histogram can assert the
    /// documented one-bucket-width equivalence. Non-finite and negative values clamp to
    /// zero first, exactly as [`Self::record`] does.
    ///
    /// Note the first power-of-two bucket is shared by the linear `[0, 1)` mapping and
    /// the logarithmic `[1, 2)` range; for sub-unit values the returned bounds describe
    /// the linear containment range. The very last bucket absorbs everything beyond the
    /// covered range, so its upper edge is `f64::INFINITY` (no width bound exists
    /// there).
    pub fn bucket_bounds(value: f64) -> (f64, f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let index = Self::bucket_index(v);
        let sub = index % SUB_BUCKETS;
        if v < 1.0 {
            let w = 1.0 / SUB_BUCKETS as f64;
            return (sub as f64 * w, (sub + 1) as f64 * w);
        }
        let base = 2f64.powi((index / SUB_BUCKETS) as i32);
        let lower = base + base * sub as f64 / SUB_BUCKETS as f64;
        if index == EXP_BUCKETS * SUB_BUCKETS - 1 {
            // The clamp bucket is open-ended: it contains every value past the covered
            // range, so no finite upper edge would contain them all.
            return (lower, f64::INFINITY);
        }
        (lower, base + base * (sub + 1) as f64 / SUB_BUCKETS as f64)
    }

    /// Records a single value.
    ///
    /// Negative values are clamped to zero.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = Self::bucket_index(v);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        if self.min.is_none_or(|m| v < m) {
            self.min = Some(v);
        }
        if self.max.is_none_or(|m| v > m) {
            self.max = Some(v);
        }
    }

    /// Records the same value `n` times in one bucket update.
    ///
    /// Used by the clustered-fleet approximation to replicate a representative node's
    /// latency samples across its replica weight. The merge is exact: counts, sum, and
    /// every quantile come out identical to calling [`Self::record`] `n` times, and
    /// `record_n(v, 1)` is bit-identical to `record(v)` (same clamp, same bucket, and
    /// `v * 1.0 == v` exactly in IEEE-754). `n == 0` is a no-op.
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let idx = Self::bucket_index(v);
        self.buckets[idx] += n;
        self.count += n;
        self.sum += v * n as f64;
        if self.min.is_none_or(|m| v < m) {
            self.min = Some(v);
        }
        if self.max.is_none_or(|m| v > m) {
            self.max = Some(v);
        }
    }

    /// Records every value in `values`.
    pub fn record_many(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Merges another histogram into this one.
    ///
    /// Merging is exact: the merged histogram reports the same counts, mean, and
    /// percentiles as one histogram that recorded every value directly, which is what
    /// makes per-node histograms safe to aggregate into fleet-level quantiles.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket configurations (see
    /// [`Self::try_merge`]); use `try_merge` to handle that case without panicking.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if let Err(e) = self.try_merge(other) {
            panic!("cannot merge latency histograms: {e}");
        }
    }

    /// Merges another histogram into this one, failing if the bucket configurations
    /// differ.
    ///
    /// Histograms built in-process always share the compile-time bucket layout, but a
    /// histogram deserialized from an archive (possibly written by a build with different
    /// constants, or hand-edited) may not. Summing misaligned buckets would silently
    /// produce wrong quantiles — exactly the failure mode fleet-level aggregation cannot
    /// afford — so mismatched configurations are reported as an error and `self` is left
    /// untouched.
    ///
    /// The check compares total bucket counts, which distinguishes builds whose
    /// `SUB_BUCKETS × EXP_BUCKETS` products differ. Two geometries with equal products
    /// (e.g. the factors swapped) would still pass; serialized histograms do not carry
    /// their geometry, so that residual case is documented rather than detected.
    pub fn try_merge(&mut self, other: &LatencyHistogram) -> Result<(), HistogramMergeError> {
        if self.buckets.len() != other.buckets.len() {
            return Err(HistogramMergeError {
                own_buckets: self.buckets.len(),
                other_buckets: other.buckets.len(),
            });
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(())
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the histogram has no recorded values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.min.unwrap_or(0.0)
    }

    /// Largest recorded value, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.max.unwrap_or(0.0)
    }

    /// Value at quantile `q` (`0.0..=1.0`).
    ///
    /// The returned value is the representative value of the bucket containing the
    /// requested rank, clamped to the observed `[min, max]` range so exact extremes are
    /// reported faithfully.
    ///
    /// Returns 0.0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Convenience accessor for the 99th percentile — the QoS metric used throughout the
    /// paper.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Convenience accessor for the 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Clears all recorded values.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            *b = 0;
        }
        self.count = 0;
        self.sum = 0.0;
        self.min = None;
        self.max = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn record_n_is_exactly_n_repeated_records() {
        let values = [0.4, 1.0, 42.5, 1e7, f64::NAN, -3.0];
        let weights = [1u64, 3, 7, 2, 4, 5];
        let mut weighted = LatencyHistogram::new();
        let mut repeated = LatencyHistogram::new();
        for (&v, &n) in values.iter().zip(&weights) {
            weighted.record_n(v, n);
            for _ in 0..n {
                repeated.record(v);
            }
        }
        assert_eq!(weighted.count(), repeated.count());
        assert_eq!(weighted.mean().to_bits(), repeated.mean().to_bits());
        assert_eq!(weighted.min(), repeated.min());
        assert_eq!(weighted.max(), repeated.max());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(weighted.percentile(q), repeated.percentile(q));
        }
        // Weight 1 is bit-identical to a plain record; weight 0 is a no-op.
        let mut one = LatencyHistogram::new();
        let mut plain = LatencyHistogram::new();
        one.record_n(42.5, 1);
        plain.record(42.5);
        assert_eq!(one.mean().to_bits(), plain.mean().to_bits());
        one.record_n(9.0, 0);
        assert_eq!(one.count(), 1);
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(42.0);
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 42.0).abs() < 1e-9);
        let p = h.percentile(0.99);
        assert!(
            (p - 42.0).abs() / 42.0 < 0.05,
            "p99 {p} should be close to 42"
        );
    }

    #[test]
    fn uniform_sequence_percentiles() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.06, "p50 was {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.06, "p99 was {p99}");
        assert!(p99 > p50);
    }

    #[test]
    fn percentiles_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for i in 0..5_000u64 {
            h.record((i % 977) as f64 + 0.5);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            let v = h.percentile(q);
            assert!(v + 1e-9 >= prev, "percentile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn merge_equals_recording_all() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..1000 {
            let v = (i * 7 % 311) as f64 + 1.0;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.percentile(0.99) - all.percentile(0.99)).abs() < 1e-9);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
    }

    /// Builds a histogram whose serialized bucket array was truncated — the shape a
    /// foreign or hand-edited archive would have.
    fn tampered_histogram() -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        h.record_many(&[1.0, 2.0, 3.0]);
        let json = serde::Serialize::to_value(&h);
        let entries = match json {
            serde::Value::Object(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    if k == "buckets" {
                        let buckets = match v {
                            serde::Value::Array(mut items) => {
                                items.truncate(64);
                                items
                            }
                            _ => panic!("buckets serialize as an array"),
                        };
                        (k, serde::Value::Array(buckets))
                    } else {
                        (k, v)
                    }
                })
                .collect::<Vec<_>>(),
            _ => panic!("histograms serialize as objects"),
        };
        serde::Deserialize::from_value(&serde::Value::Object(entries))
            .expect("structurally valid JSON")
    }

    #[test]
    fn try_merge_rejects_mismatched_bucket_configurations() {
        let foreign = tampered_histogram();
        let mut h = LatencyHistogram::new();
        h.record_many(&[5.0, 6.0]);
        let before_count = h.count();
        let before_p99 = h.percentile(0.99);
        let err = h.try_merge(&foreign).unwrap_err();
        assert_eq!(err.other_buckets, 64);
        assert!(err.own_buckets > err.other_buckets);
        assert!(err.to_string().contains("bucket configurations differ"));
        // The failed merge must leave the receiver untouched.
        assert_eq!(h.count(), before_count);
        assert_eq!(h.percentile(0.99), before_p99);
    }

    #[test]
    fn merge_panics_on_mismatched_bucket_configurations() {
        let foreign = tampered_histogram();
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.merge(&foreign);
        }));
        assert!(result.is_err(), "misaligned merges must fail loudly");
    }

    #[test]
    fn try_merge_of_matching_configurations_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 0..500 {
            let v = (i * 13 % 97) as f64 + 0.5;
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.try_merge(&b).expect("same-config merge succeeds");
        assert_eq!(a.count(), all.count());
        assert_eq!(a.percentile(0.99), all.percentile(0.99));
        assert_eq!(a.mean(), all.mean());
    }

    #[test]
    fn negative_and_nonfinite_values_are_clamped() {
        let mut h = LatencyHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = LatencyHistogram::new();
        h.record_many(&[1.0, 2.0, 3.0]);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_quantile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(1.5);
    }

    #[test]
    fn bit_extracted_bucket_index_matches_the_log2_reference() {
        // The production bucket_index reads the exponent/mantissa bits directly; this
        // pins it against the straightforward log2-based formulation it replaced.
        fn reference(value: f64) -> usize {
            let v = value.max(0.0);
            if v < 1.0 {
                return (v * SUB_BUCKETS as f64) as usize % SUB_BUCKETS;
            }
            let exp = (v.log2().floor() as usize).min(EXP_BUCKETS - 1);
            let base = 2f64.powi(exp as i32);
            let frac = ((v - base) / base * SUB_BUCKETS as f64) as usize;
            exp * SUB_BUCKETS + frac.min(SUB_BUCKETS - 1)
        }
        let mut v = 1e-3;
        while v < 1e13 {
            assert_eq!(
                LatencyHistogram::bucket_index(v),
                reference(v),
                "bucket mismatch at {v}"
            );
            v *= 1.000_37;
        }
        // Exact powers of two and their upper neighbors are edge cases of the exponent
        // extraction.
        for e in 0..45i32 {
            let p = 2f64.powi(e);
            for x in [p, p * (1.0 + f64::EPSILON)] {
                assert_eq!(
                    LatencyHistogram::bucket_index(x),
                    reference(x),
                    "bucket mismatch at 2^{e} neighbor {x}"
                );
            }
            // The value immediately *below* a power of two is where the bit extraction
            // is strictly more correct than the log2 formulation: libm's log2 rounds
            // 2^e·(1 - 2^-53) to exactly e, so the reference misfiled it one full
            // power-of-two bucket high; the exponent field cannot.
            if (1..EXP_BUCKETS as i32).contains(&e) {
                let just_below = p * (1.0 - f64::EPSILON / 2.0);
                assert_eq!(
                    LatencyHistogram::bucket_index(just_below),
                    (e as usize - 1) * SUB_BUCKETS + (SUB_BUCKETS - 1),
                    "just-below-2^{e} must land in the top sub-bucket below"
                );
            }
        }
    }

    #[test]
    fn bucket_bounds_contain_the_value_and_match_the_representative() {
        let mut v = 1e-2;
        while v < 1e9 {
            let (lo, hi) = LatencyHistogram::bucket_bounds(v);
            assert!(lo <= v && v < hi, "bounds ({lo}, {hi}) must contain {v}");
            if v >= 1.0 {
                let rep = LatencyHistogram::bucket_value(LatencyHistogram::bucket_index(v));
                assert!(
                    lo <= rep && rep <= hi,
                    "representative {rep} outside ({lo}, {hi}) at {v}"
                );
                // The quantization granularity is bounded by 2/SUB_BUCKETS relative.
                assert!((hi - lo) / v <= 2.0 / SUB_BUCKETS as f64 + 1e-12);
            }
            v *= 1.07;
        }
        // Non-finite values clamp to the zero bucket, like record().
        assert_eq!(LatencyHistogram::bucket_bounds(f64::NAN).0, 0.0);
        assert_eq!(LatencyHistogram::bucket_bounds(-3.0).0, 0.0);
        // The clamp bucket is open-ended: values beyond the covered range must still be
        // contained by their reported bounds.
        for v in [2f64.powi(41), 1e15, 1e300] {
            let (lo, hi) = LatencyHistogram::bucket_bounds(v);
            assert!(lo <= v, "clamp-bucket lower edge {lo} must not exceed {v}");
            assert_eq!(
                hi,
                f64::INFINITY,
                "the clamp bucket has no finite upper edge"
            );
        }
    }

    #[test]
    fn relative_error_bound_holds() {
        // Every recorded value should be reported by its own bucket within ~2/SUB_BUCKETS
        // relative error.
        let mut worst = 0.0f64;
        for v in [1.0, 3.0, 17.0, 123.0, 999.0, 12_345.0, 1_000_000.0] {
            let idx = LatencyHistogram::bucket_index(v);
            let rep = LatencyHistogram::bucket_value(idx);
            let rel = (rep - v).abs() / v;
            worst = worst.max(rel);
        }
        assert!(
            worst < 2.0 / SUB_BUCKETS as f64 + 0.02,
            "worst relative error {worst}"
        );
    }
}
