//! Topology figure: machines-needed and joules under rack structure, with and
//! without migration-driven consolidation.
//!
//! The machines-needed headline is a consolidation story, and consolidation in real
//! datacenters happens against rack/power-domain structure. This binary lays the
//! energy fleet out as four 2-node racks, strikes rack 0 with a whole-rack
//! power-domain outage mid-day, and runs the Precise baseline and Pliant under
//! **common random numbers**, each with the autoscaler's active-consolidation knob
//! off (a draining node waits for its batch jobs to complete — the historical
//! behaviour) and on (in-flight jobs are live-migrated onto active nodes and the
//! drained machine parks the same interval). The headline is how much earlier the
//! Pliant fleet's first park lands with consolidation, at equal QoS verdicts, and
//! what that is worth in joules.
//!
//! Usage: `fig_topology [--json] [--seed N] [--approx K]
//!                      [--topology <racks>x<nodes-per-rack>] [--rack-power-w W]
//!                      [--trace PATH] [--trace-level off|decisions|full]`
//!
//! `--topology` / `--rack-power-w` override the default 4x2 unbudgeted grid;
//! `--approx K` simulates the fleet through the clustered approximation with `K`
//! representatives per node group (`0` or absent = exact); `--trace PATH` exports
//! each run's decision-event stream tagged by run name.

use pliant_bench::{
    approximation_from_args, cluster_topology_scenario, export_trace, flag_value, print_table,
    topology_spec_from_args, trace_opts, TraceRunSummary,
};
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_telemetry::obs::{Event, EventLog, ObsLevel, PowerStateKind};
use pliant_workloads::service::ServiceId;
use serde::Serialize;

/// One (policy, consolidation) cell of the figure.
#[derive(Serialize)]
struct TopologyRun {
    run: String,
    policy: String,
    consolidate: bool,
    fleet_energy_j: f64,
    mean_active_nodes: f64,
    min_active_nodes: usize,
    fleet_tail_latency_ratio: f64,
    qos_met: bool,
    jobs_completed: usize,
    /// First interval at which the autoscaler parked a drained node (`null` when
    /// nothing parked over the horizon).
    first_park_interval: Option<u32>,
    /// Live migrations performed (clustered batches count once; see
    /// `migrated_jobs` for the replica-weighted total).
    migrations: usize,
    /// Logical jobs moved by those migrations.
    migrated_jobs: usize,
    rack_outage_events: usize,
    rack_power_capped_events: usize,
}

/// The consolidation headline: the Pliant fleet's first park with and without
/// migration, and what the earlier consolidation is worth.
#[derive(Serialize)]
struct ConsolidationHeadline {
    pliant_first_park_without: Option<u32>,
    pliant_first_park_with: Option<u32>,
    /// Intervals by which consolidation beats completion-waiting to the first park
    /// (positive = earlier).
    parks_earlier_by_intervals: i64,
    /// Pliant joules saved by consolidating (no-consolidation minus consolidation).
    pliant_energy_saved_j: f64,
    /// Whether the two Pliant runs reach the same QoS verdict (the comparison is
    /// only meaningful when they do).
    qos_verdicts_equal: bool,
}

/// Event-log rollup for one run: park timing, migration volume, rack events.
struct LogStats {
    first_park_interval: Option<u32>,
    migrations: usize,
    migrated_jobs: usize,
    rack_outage_events: usize,
    rack_power_capped_events: usize,
}

fn log_stats(log: &EventLog) -> LogStats {
    let mut stats = LogStats {
        first_park_interval: None,
        migrations: 0,
        migrated_jobs: 0,
        rack_outage_events: 0,
        rack_power_capped_events: 0,
    };
    for record in &log.records {
        match record.event {
            Event::AutoscalerTransition {
                to: PowerStateKind::Parked,
                ..
            } => {
                stats.first_park_interval = Some(
                    stats
                        .first_park_interval
                        .map_or(record.interval, |first| first.min(record.interval)),
                );
            }
            Event::JobMigrated { weight, .. } => {
                stats.migrations += 1;
                stats.migrated_jobs += weight as usize;
            }
            Event::RackOutage { .. } => stats.rack_outage_events += 1,
            Event::RackPowerCapped { .. } => stats.rack_power_capped_events += 1,
            _ => {}
        }
    }
    stats
}

#[derive(Serialize)]
struct TopologyFigure {
    service: String,
    nodes: usize,
    topology: TopologyConfig,
    seed: u64,
    runs: Vec<TopologyRun>,
    consolidation: ConsolidationHeadline,
    /// Per-run observability rollups (empty when the figure ran untraced).
    obs: Vec<TraceRunSummary>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let seed: u64 = flag_value(&args, "--seed").map_or(7, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed expects an integer");
            std::process::exit(2);
        })
    });
    let approximation = approximation_from_args(&args);
    let spec = topology_spec_from_args(&args);
    let trace = trace_opts(&args);
    // The park/migration/outage rollups come from the decision-event stream, so the
    // figure always records at least at `decisions` (tracing observes decisions
    // without altering them — the simulation is byte-identical at every level).
    let level = if trace.enabled() {
        trace.level
    } else {
        ObsLevel::Decisions
    };

    let service = ServiceId::Memcached;
    let engine = Engine::new().parallel();
    let mut runs = Vec::new();
    let mut obs = Vec::new();
    let mut topology = TopologyConfig::Flat;
    let mut nodes = 0usize;
    let mut pliant_parks = [None, None];
    let mut pliant_energy = [0.0f64; 2];
    let mut pliant_qos = [false; 2];
    for policy in [PolicyKind::Precise, PolicyKind::Pliant] {
        for consolidate in [false, true] {
            let mut scenario = cluster_topology_scenario(policy, consolidate, seed);
            scenario.approximation = approximation;
            if let Some(spec) = &spec {
                scenario.topology = spec.config_for(scenario.nodes);
            }
            if let Err(e) = scenario.validate() {
                eprintln!("error: topology override does not fit the fleet: {e}");
                std::process::exit(2);
            }
            nodes = scenario.nodes;
            topology = scenario.topology.clone();
            let run = if consolidate {
                format!("{policy}-consolidate")
            } else {
                policy.to_string()
            };
            let (outcome, log) = engine.run_cluster_traced(&scenario, level);
            let stats = log_stats(&log);
            if policy == PolicyKind::Pliant {
                let slot = consolidate as usize;
                pliant_parks[slot] = stats.first_park_interval;
                pliant_energy[slot] = outcome.fleet_energy_j;
                pliant_qos[slot] = outcome.qos_met();
            }
            runs.push(TopologyRun {
                run: run.clone(),
                policy: policy.to_string(),
                consolidate,
                fleet_energy_j: outcome.fleet_energy_j,
                mean_active_nodes: outcome.mean_active_nodes,
                min_active_nodes: outcome.min_active_nodes,
                fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
                qos_met: outcome.qos_met(),
                jobs_completed: outcome.jobs_completed(),
                first_park_interval: stats.first_park_interval,
                migrations: stats.migrations,
                migrated_jobs: stats.migrated_jobs,
                rack_outage_events: stats.rack_outage_events,
                rack_power_capped_events: stats.rack_power_capped_events,
            });
            if trace.enabled() {
                obs.push(export_trace(&trace, &run, &log));
            }
        }
    }

    let parks_earlier_by_intervals = match (pliant_parks[0], pliant_parks[1]) {
        (Some(without), Some(with)) => i64::from(without) - i64::from(with),
        // Consolidation parking where completion-waiting never did is the strongest
        // possible win; report the remaining horizon as the margin.
        (None, Some(_)) => i64::MAX,
        _ => 0,
    };
    let figure = TopologyFigure {
        service: service.name().to_string(),
        nodes,
        topology,
        seed,
        runs,
        consolidation: ConsolidationHeadline {
            pliant_first_park_without: pliant_parks[0],
            pliant_first_park_with: pliant_parks[1],
            parks_earlier_by_intervals,
            pliant_energy_saved_j: pliant_energy[0] - pliant_energy[1],
            qos_verdicts_equal: pliant_qos[0] == pliant_qos[1],
        },
        obs,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&figure).expect("serializable")
        );
        return;
    }

    println!(
        "Topology study: {} on a {}-machine fleet in racked power domains\n\
         (rack 0 suffers a whole-rack outage mid-day; energy-aware autoscaler;\n\
         consolidation = live-migrate batch jobs off draining nodes; CRN seed {})\n",
        service.name(),
        nodes,
        seed
    );
    let rows: Vec<Vec<String>> = figure
        .runs
        .iter()
        .map(|r| {
            vec![
                r.run.clone(),
                format!("{:.1} kJ", r.fleet_energy_j / 1e3),
                format!("{:.1}", r.mean_active_nodes),
                r.min_active_nodes.to_string(),
                format!("{:.2}", r.fleet_tail_latency_ratio),
                if r.qos_met { "yes" } else { "no" }.to_string(),
                r.first_park_interval
                    .map_or("never".to_string(), |i| i.to_string()),
                r.migrations.to_string(),
                r.rack_outage_events.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "run",
            "fleet energy",
            "mean active",
            "min active",
            "p99/QoS",
            "QoS met",
            "first park",
            "migrations",
            "rack outages",
        ],
        &rows,
    );
    println!();
    match (
        figure.consolidation.pliant_first_park_without,
        figure.consolidation.pliant_first_park_with,
    ) {
        (Some(without), Some(with)) => println!(
            "pliant first park: interval {with} with consolidation vs {without} without \
             ({} intervals earlier, {:.1} kJ saved, equal QoS verdicts: {})",
            figure.consolidation.parks_earlier_by_intervals,
            figure.consolidation.pliant_energy_saved_j / 1e3,
            figure.consolidation.qos_verdicts_equal,
        ),
        (None, Some(with)) => println!(
            "pliant first park: interval {with} with consolidation; completion-waiting never parked"
        ),
        _ => println!("pliant fleet never parked a node on this operating point"),
    }
    for t in &figure.obs {
        if let Some(file) = &t.trace_file {
            println!(
                "trace ({}): {} events -> {file}",
                t.run, t.summary.events_recorded
            );
        }
    }
}
