//! Performance-report harness: measures the simulator's hot-path throughput and emits a
//! machine-readable `BENCH_PERF.json`, the repo's perf trajectory record.
//!
//! Four throughput metrics cover the execution layers:
//!
//! * `single_node_intervals_per_sec` — decision intervals simulated per second by a
//!   *serial* engine running the `fig5_aggregate` experiment grid (the paper's headline
//!   sweep: every service × every application × {Precise, Pliant}). This is the purest
//!   measure of the per-interval hot path (sample generation → monitor → policy →
//!   actuation).
//! * `suite_cells_per_sec` — suite cells completed per second by a *parallel* engine on
//!   the same grid (scheduling + sink-delivery overhead on top of the hot path).
//! * `fleet_node_intervals_per_sec` — node-intervals advanced per second by a parallel
//!   cluster run of the `fig_cluster` operating point (adds balancer/scheduler
//!   coordination and the node worker pool).
//! * `hyperscale_node_intervals_per_sec` — *logical* node-intervals covered per second
//!   by a clustered 10k-node day/night run (the `fig_energy` scenario at scale with 4
//!   representatives per node group). Units are logical fleet size × intervals, so the
//!   rate credits the replication the approximation buys; `--check` additionally
//!   enforces the structural claim that this rate is at least 10× the exact
//!   `fleet_node_intervals_per_sec` — the approximation must stay an order of
//!   magnitude ahead of exact simulation, whatever the runner class.
//!
//! Each metric is measured `--runs` times (default 3) by repeating its workload until a
//! minimum wall-clock window has elapsed; the best run is reported, which is the standard
//! way to suppress scheduler noise on shared CI runners.
//!
//! Usage:
//!
//! ```text
//! perf_report [--quick] [--runs N] [--json] [--out FILE]
//!             [--check BASELINE [--tolerance FRAC]]
//! ```
//!
//! `--check` compares the fresh measurement against a baseline report (normally the
//! checked-in `BENCH_PERF.json`) and exits non-zero if any metric regressed by more than
//! `--tolerance` (default 0.25, i.e. ±25%). The CI `perf-gate` job is exactly
//! `perf_report --out perf_current.json --check BENCH_PERF.json`; see the README's
//! "Performance" section for the baseline-refresh procedure.

use std::time::Instant;

use pliant_approx::catalog::AppId;
use pliant_cluster::{ClusterEngineExt, ClusterScenario, ClusterSim};
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;

/// Schema tag embedded in every report so future shape changes are detectable.
/// v2 added `hyperscale_node_intervals_per_sec`; v1 baselines are rejected by
/// `--check` with a refresh instruction (see README "Performance" for the procedure).
const SCHEMA: &str = "pliant-perf-report/v2";

/// How many times faster the clustered hyperscale run must cover logical
/// node-intervals than the exact fleet run, enforced structurally by `--check`.
const HYPERSCALE_MIN_SPEEDUP: f64 = 10.0;

/// One measured metric: a rate plus the raw counters it was derived from.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct Metric {
    /// Work units completed per second (higher is better).
    per_sec: f64,
    /// Work units completed during the best run.
    units: u64,
    /// Wall-clock seconds of the best run.
    elapsed_s: f64,
}

/// Wall-clock seconds one hyperscale day/night run spends in each pipeline stage.
///
/// Informational only: the stage split explains *where* a throughput regression
/// lives, but `--check` gates on the throughput metrics, not on the split (stage
/// timings on shared runners are too noisy to gate individually). Absent in
/// pre-breakdown baselines; deserializes as zeros.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
struct StageBreakdown {
    /// Building the fleet: population grouping, node construction, RNG seeding.
    construct_s: f64,
    /// Advancing every interval (balancer split, node stepping, autoscaler planning).
    simulate_s: f64,
    /// Everything `run_cluster` adds on top: per-interval scalar aggregation,
    /// histogram merging, and outcome assembly. Estimated as a full engine run minus
    /// the two directly-timed stages, floored at zero.
    aggregate_s: f64,
    /// Wall clock of the full engine run the estimate is taken against.
    total_s: f64,
}

/// Times the stages of one run of `scenario` (see [`StageBreakdown`]).
fn stage_breakdown(scenario: &ClusterScenario, engine: &Engine) -> StageBreakdown {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let started = Instant::now();
    let mut sim = ClusterSim::new(scenario, engine.catalog());
    let construct_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    for _ in 0..scenario.max_intervals() {
        let interval = sim.advance_threads(threads);
        sim.recycle_interval(interval);
    }
    let simulate_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let _ = engine.run_cluster(scenario);
    let total_s = started.elapsed().as_secs_f64();
    StageBreakdown {
        construct_s,
        simulate_s,
        aggregate_s: (total_s - construct_s - simulate_s).max(0.0),
        total_s,
    }
}

/// The full perf report; serialized as `BENCH_PERF.json`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
struct PerfReport {
    /// Report-format identifier (`pliant-perf-report/v2`).
    schema: String,
    /// Logical cores available when the report was taken.
    cores: usize,
    /// Measurement repetitions per metric (best run is reported).
    runs: usize,
    /// Whether the reduced `--quick` grid was used (quick reports are not comparable
    /// to full ones and are rejected by `--check`).
    quick: bool,
    /// Decision intervals per second, serial engine, fig5 grid.
    single_node_intervals_per_sec: Metric,
    /// Suite cells per second, parallel engine, fig5 grid.
    suite_cells_per_sec: Metric,
    /// Cluster node-intervals per second, parallel engine, fig_cluster operating point.
    fleet_node_intervals_per_sec: Metric,
    /// Logical node-intervals per second, clustered 10k-node day/night run.
    hyperscale_node_intervals_per_sec: Metric,
    /// Stage-level wall-clock split of one hyperscale run (informational; not gated).
    #[serde(default)]
    stages: StageBreakdown,
}

impl PerfReport {
    fn metrics(&self) -> [(&'static str, &Metric); 4] {
        [
            (
                "single_node_intervals_per_sec",
                &self.single_node_intervals_per_sec,
            ),
            ("suite_cells_per_sec", &self.suite_cells_per_sec),
            (
                "fleet_node_intervals_per_sec",
                &self.fleet_node_intervals_per_sec,
            ),
            (
                "hyperscale_node_intervals_per_sec",
                &self.hyperscale_node_intervals_per_sec,
            ),
        ]
    }
}

/// The fig5_aggregate experiment grid (optionally reduced for `--quick`).
fn fig5_suite(quick: bool) -> Suite {
    let apps: Vec<AppId> = if quick {
        AppId::all().into_iter().take(6).collect()
    } else {
        AppId::all().to_vec()
    };
    let services: Vec<ServiceId> = if quick {
        vec![ServiceId::Nginx]
    } else {
        ServiceId::all().to_vec()
    };
    Suite::new(
        Scenario::builder(services[0])
            .app(apps[0])
            .horizon_intervals(70)
            .build(),
    )
    .named("perf-fig5")
    .for_each_service(services)
    .for_each_app(apps)
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
}

/// Repeats `work` until at least `min_elapsed_s` of wall clock has passed, returning the
/// total unit count and elapsed time. `work` returns the units it completed.
fn measure(min_elapsed_s: f64, mut work: impl FnMut() -> u64) -> Metric {
    let start = Instant::now();
    let mut units = 0u64;
    loop {
        units += work();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_elapsed_s {
            return Metric {
                per_sec: units as f64 / elapsed,
                units,
                elapsed_s: elapsed,
            };
        }
    }
}

/// Best (highest-rate) of `runs` measurements.
fn best_of(runs: usize, min_elapsed_s: f64, mut work: impl FnMut() -> u64) -> Metric {
    let mut best: Option<Metric> = None;
    for _ in 0..runs.max(1) {
        let m = measure(min_elapsed_s, &mut work);
        if best.as_ref().is_none_or(|b| m.per_sec > b.per_sec) {
            best = Some(m);
        }
    }
    best.expect("at least one measurement run")
}

fn take_report(quick: bool, runs: usize) -> PerfReport {
    let min_window = if quick { 0.05 } else { 0.25 };
    let suite = fig5_suite(quick);
    let serial = Engine::new();
    let parallel = Engine::new().parallel();

    let single_node = best_of(runs, min_window, || {
        serial
            .run_collect(&suite)
            .iter()
            .map(|cell| cell.outcome.intervals as u64)
            .sum()
    });
    let cells = best_of(runs, min_window, || {
        parallel.run_collect(&suite).len() as u64
    });
    let fleet_scenario =
        pliant_bench::cluster_machines_needed_scenario(4, 2.6, PolicyKind::Pliant, 7)
            .expect("the fig_cluster operating point fits a 4-node fleet");
    let fleet = best_of(runs, min_window, || {
        let outcome = parallel.run_cluster(&fleet_scenario);
        (outcome.nodes * outcome.intervals) as u64
    });
    // The hyperscale metric counts *logical* node-intervals: a clustered 10k-node
    // day/night run simulates a handful of instances but stands for the whole fleet,
    // which is exactly the speedup the approximation is for.
    let mut hyperscale_scenario =
        pliant_bench::cluster_energy_scenario_at_scale(10_000, PolicyKind::Pliant, 7);
    hyperscale_scenario.approximation = pliant_cluster::FleetApproximation::Clustered {
        representatives_per_group: 4,
    };
    let hyperscale = best_of(runs, min_window, || {
        let outcome = parallel.run_cluster(&hyperscale_scenario);
        (outcome.nodes * outcome.intervals) as u64
    });
    let stages = stage_breakdown(&hyperscale_scenario, &parallel);

    PerfReport {
        schema: SCHEMA.to_string(),
        cores: std::thread::available_parallelism().map_or(1, |p| p.get()),
        runs,
        quick,
        single_node_intervals_per_sec: single_node,
        suite_cells_per_sec: cells,
        fleet_node_intervals_per_sec: fleet,
        hyperscale_node_intervals_per_sec: hyperscale,
        stages,
    }
}

/// Compares `current` against `baseline`; returns the list of human-readable failures.
fn check(current: &PerfReport, baseline: &PerfReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.schema != SCHEMA {
        failures.push(format!(
            "baseline schema `{}` is not `{SCHEMA}`; refresh the baseline",
            baseline.schema
        ));
        return failures;
    }
    if baseline.quick != current.quick {
        failures.push(
            "baseline and current report disagree on --quick; measurements are not \
             comparable"
                .to_string(),
        );
        return failures;
    }
    if baseline.cores != current.cores {
        // A different machine class invalidates absolute-throughput comparison (the
        // parallel metrics scale with cores); warn loudly rather than fail so the
        // bootstrap baseline and runner-class migrations are workable, but the fix is
        // always the same: refresh the baseline on the current runner class.
        eprintln!(
            "warning: baseline was measured on {} core(s) but this machine has {}; \
             absolute comparison is unreliable — refresh the baseline on this runner \
             class (see README \"Performance\")",
            baseline.cores, current.cores
        );
    }
    for ((name, cur), (_, base)) in current.metrics().into_iter().zip(baseline.metrics()) {
        let floor = base.per_sec * (1.0 - tolerance);
        if cur.per_sec < floor {
            failures.push(format!(
                "{name}: {:.0}/s is below the baseline floor {:.0}/s \
                 (baseline {:.0}/s - {:.0}% tolerance)",
                cur.per_sec,
                floor,
                base.per_sec,
                tolerance * 100.0
            ));
        }
    }
    // Structural gate, independent of the baseline's absolute numbers: the clustered
    // hyperscale run must cover logical node-intervals at least an order of magnitude
    // faster than exact fleet simulation, or the approximation has lost its point.
    let exact = current.fleet_node_intervals_per_sec.per_sec;
    let clustered = current.hyperscale_node_intervals_per_sec.per_sec;
    if clustered < exact * HYPERSCALE_MIN_SPEEDUP {
        failures.push(format!(
            "hyperscale_node_intervals_per_sec: {clustered:.0}/s is less than \
             {HYPERSCALE_MIN_SPEEDUP}x the exact fleet rate {exact:.0}/s \
             (speedup {:.1}x)",
            clustered / exact
        ));
    }
    failures
}

fn print_human(report: &PerfReport) {
    println!(
        "perf report ({} cores, best of {} runs{})",
        report.cores,
        report.runs,
        if report.quick { ", --quick grid" } else { "" }
    );
    for (name, m) in report.metrics() {
        println!(
            "  {name:<32} {:>12.0}/s   ({} units in {:.3} s)",
            m.per_sec, m.units, m.elapsed_s
        );
    }
    let stages = &report.stages;
    if stages.total_s > 0.0 {
        let pct = |s: f64| 100.0 * s / stages.total_s.max(f64::MIN_POSITIVE);
        println!(
            "  hyperscale stage split: construct {:.3} s ({:.0}%), simulate {:.3} s \
             ({:.0}%), aggregate {:.3} s ({:.0}%)",
            stages.construct_s,
            pct(stages.construct_s),
            stages.simulate_s,
            pct(stages.simulate_s),
            stages.aggregate_s,
            pct(stages.aggregate_s),
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value_of = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };

    let quick = flag("--quick");
    let runs: usize = value_of("--runs")
        .map(|v| v.parse().expect("--runs takes an integer"))
        .unwrap_or(3);
    let tolerance: f64 = value_of("--tolerance")
        .map(|v| v.parse().expect("--tolerance takes a fraction"))
        .unwrap_or(0.25);
    assert!(
        (0.0..1.0).contains(&tolerance),
        "--tolerance must be a fraction in [0, 1)"
    );

    let report = take_report(quick, runs);
    if flag("--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable report")
        );
    } else {
        print_human(&report);
    }
    if let Some(path) = value_of("--out") {
        std::fs::write(
            &path,
            format!(
                "{}\n",
                serde_json::to_string_pretty(&report).expect("serializable report")
            ),
        )
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if let Some(baseline_path) = value_of("--check") {
        let raw = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline: PerfReport = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("malformed baseline {baseline_path}: {e}"));
        let failures = check(&report, &baseline, tolerance);
        if failures.is_empty() {
            println!(
                "perf gate: OK (all metrics within {:.0}% of {baseline_path})",
                tolerance * 100.0
            );
        } else {
            eprintln!("perf gate: FAILED against {baseline_path}");
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!(
                "If this slowdown is intentional, refresh the baseline (see README \
                 \"Performance\") or apply the `perf-override` label to the PR."
            );
            std::process::exit(1);
        }
        for ((name, cur), (_, base)) in report.metrics().into_iter().zip(baseline.metrics()) {
            if cur.per_sec > base.per_sec * (1.0 + tolerance) {
                println!(
                    "note: {name} improved {:.0}/s -> {:.0}/s; consider refreshing the \
                     baseline to lock in the gain",
                    base.per_sec, cur.per_sec
                );
            }
        }
    }
}
