//! Regenerates Figure 6: Pliant managing two approximate applications (canneal and
//! Bayesian) co-located with each interactive service.
//!
//! Usage: `fig6_multi_app [--json]`

use pliant_approx::catalog::AppId;
use pliant_bench::{format_latency, print_table};
use pliant_core::engine::Engine;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct MultiTraceRow {
    time_s: f64,
    p99_latency_s: f64,
    canneal_variant: f64,
    canneal_reclaimed: f64,
    bayesian_variant: f64,
    bayesian_reclaimed: f64,
}

#[derive(Serialize)]
struct MultiTrace {
    service: String,
    qos_target_s: f64,
    rows: Vec<MultiTraceRow>,
    canneal_inaccuracy_pct: f64,
    bayesian_inaccuracy_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);

    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .apps([AppId::Canneal, AppId::Bayesian])
            .horizon_intervals(60)
            .build(),
    )
    .named("fig6")
    .for_each_service(ServiceId::all());

    let cells = Engine::new().parallel().run_collect(&suite);

    let results: Vec<MultiTrace> = cells
        .iter()
        .map(|cell| {
            let outcome = &cell.outcome;
            let latency = outcome.trace.get("p99_latency_s").expect("latency series");
            let cv = outcome
                .trace
                .get("variant_canneal")
                .expect("canneal variant series");
            let cr = outcome
                .trace
                .get("reclaimed_canneal")
                .expect("canneal reclaimed series");
            let bv = outcome
                .trace
                .get("variant_bayesian")
                .expect("bayesian variant series");
            let br = outcome
                .trace
                .get("reclaimed_bayesian")
                .expect("bayesian reclaimed series");
            let rows: Vec<MultiTraceRow> = (0..latency.len())
                .map(|i| MultiTraceRow {
                    time_s: latency.points()[i].time_s,
                    p99_latency_s: latency.points()[i].value,
                    canneal_variant: cv.points()[i].value,
                    canneal_reclaimed: cr.points()[i].value,
                    bayesian_variant: bv.points()[i].value,
                    bayesian_reclaimed: br.points()[i].value,
                })
                .collect();
            MultiTrace {
                service: cell.scenario.service.name().to_string(),
                qos_target_s: outcome.qos_target_s,
                rows,
                canneal_inaccuracy_pct: outcome.app_outcomes[0].inaccuracy_pct,
                bayesian_inaccuracy_pct: outcome.app_outcomes[1].inaccuracy_pct,
            }
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("serializable")
        );
        return;
    }

    println!("Figure 6: multi-application colocation (canneal + Bayesian)\n");
    for r in &results {
        let service = ServiceId::all()
            .into_iter()
            .find(|s| s.name() == r.service)
            .expect("known service");
        println!(
            "== {} (QoS {}) — final inaccuracy: canneal {:.1}%, bayesian {:.1}% ==",
            r.service,
            format_latency(service, r.qos_target_s),
            r.canneal_inaccuracy_pct,
            r.bayesian_inaccuracy_pct
        );
        let rows: Vec<Vec<String>> = r
            .rows
            .iter()
            .map(|row| {
                vec![
                    format!("{:.0}", row.time_s),
                    format_latency(service, row.p99_latency_s),
                    if row.canneal_variant == 0.0 {
                        "precise".into()
                    } else {
                        format!("v{:.0}", row.canneal_variant)
                    },
                    format!("{:.0}", row.canneal_reclaimed),
                    if row.bayesian_variant == 0.0 {
                        "precise".into()
                    } else {
                        format!("v{:.0}", row.bayesian_variant)
                    },
                    format!("{:.0}", row.bayesian_reclaimed),
                ]
            })
            .collect();
        print_table(
            &[
                "t(s)",
                "p99",
                "canneal variant",
                "canneal cores",
                "bayesian variant",
                "bayesian cores",
            ],
            &rows,
        );
        println!();
    }
}
