//! Energy figure: the machines-needed headline converted into joules.
//!
//! The fleet-level claim of the paper is that approximation-aware co-location serves
//! the same load within QoS on fewer machines; the datacenter cost that efficiency
//! converts into is energy. This binary drives the `fig_cluster` operating point
//! through a diurnal day/night cycle with the energy-aware autoscaler sizing the
//! active node set, under the Precise baseline and under Pliant with **common random
//! numbers**, and reports fleet energy: Pliant's tail headroom lets the autoscaler
//! consolidate the same traffic onto fewer active machines at every phase of the
//! cycle (surplus machines park at the suspend draw), so the Pliant fleet serves the
//! same load within QoS at measurably lower joules.
//!
//! Usage: `fig_energy [--json] [--seed N] [--nodes N] [--approx K]
//!                    [--topology <racks>x<nodes-per-rack>] [--rack-power-w W]
//!                    [--trace PATH] [--trace-level off|decisions|full]`
//!
//! `--nodes N` scales the fleet (same day/night cycle per provisioned node, see
//! [`cluster_energy_scenario_at_scale`]); `--approx K` simulates it through the
//! clustered approximation with `K` representatives per node group (`0` or absent =
//! exact simulation of every node); `--topology` lays the fleet out in racked power
//! domains, `--rack-power-w` adds a per-rack admission budget (both default to the
//! flat, rack-free fleet); `--trace PATH` exports each policy run's
//! decision-event stream to `PATH` tagged by policy (`.json` = Chrome trace-event
//! JSON loadable in Perfetto, otherwise JSON Lines readable by `pliant-trace`).

use pliant_bench::{
    approximation_from_args, cluster_energy_scenario_at_scale, export_trace, flag_value,
    format_latency, print_table, topology_spec_from_args, trace_opts, TraceRunSummary,
};
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct PolicyEnergy {
    policy: String,
    fleet_energy_j: f64,
    mean_fleet_power_w: f64,
    energy_per_completed_job_j: f64,
    mean_active_nodes: f64,
    min_active_nodes: usize,
    fleet_p99_s: f64,
    fleet_tail_latency_ratio: f64,
    fleet_qos_violation_fraction: f64,
    qos_met: bool,
    jobs_completed: usize,
    mean_completed_inaccuracy_pct: f64,
}

impl PolicyEnergy {
    fn from_outcome(policy: PolicyKind, outcome: &ClusterOutcome) -> Self {
        Self {
            policy: policy.to_string(),
            fleet_energy_j: outcome.fleet_energy_j,
            mean_fleet_power_w: outcome.mean_fleet_power_w,
            energy_per_completed_job_j: outcome.energy_per_completed_job_j,
            mean_active_nodes: outcome.mean_active_nodes,
            min_active_nodes: outcome.min_active_nodes,
            fleet_p99_s: outcome.fleet_p99_s,
            fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
            fleet_qos_violation_fraction: outcome.fleet_qos_violation_fraction,
            qos_met: outcome.qos_met(),
            jobs_completed: outcome.jobs_completed(),
            mean_completed_inaccuracy_pct: outcome.mean_completed_inaccuracy_pct(),
        }
    }
}

#[derive(Serialize)]
struct EnergyFigure {
    service: String,
    nodes: usize,
    seed: u64,
    policies: Vec<PolicyEnergy>,
    /// Pliant fleet joules divided by Precise fleet joules — the headline.
    pliant_to_precise_energy_ratio: f64,
    /// Per-run observability rollups (empty when the figure ran untraced).
    obs: Vec<TraceRunSummary>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let seed: u64 = flag_value(&args, "--seed").map_or(7, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed expects an integer");
            std::process::exit(2);
        })
    });
    let fleet_nodes: usize = flag_value(&args, "--nodes").map_or(6, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --nodes expects an integer");
            std::process::exit(2);
        })
    });
    let approximation = approximation_from_args(&args);
    let topology_spec = topology_spec_from_args(&args);
    let trace = trace_opts(&args);

    let service = ServiceId::Memcached;
    let engine = Engine::new().parallel();
    let mut policies = Vec::new();
    let mut energies = [0.0f64; 2];
    let mut nodes = 0usize;
    let mut obs = Vec::new();
    for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
        .into_iter()
        .enumerate()
    {
        let mut scenario = cluster_energy_scenario_at_scale(fleet_nodes, policy, seed);
        scenario.approximation = approximation;
        if let Some(spec) = &topology_spec {
            scenario.topology = spec.config_for(scenario.nodes);
        }
        if let Err(e) = scenario.validate() {
            eprintln!("error: topology override does not fit the fleet: {e}");
            std::process::exit(2);
        }
        nodes = scenario.nodes;
        let (outcome, log) = engine.run_cluster_traced(&scenario, trace.level);
        energies[pi] = outcome.fleet_energy_j;
        policies.push(PolicyEnergy::from_outcome(policy, &outcome));
        if trace.enabled() {
            obs.push(export_trace(&trace, &policy.to_string(), &log));
        }
    }
    let ratio = energies[1] / energies[0];

    let figure = EnergyFigure {
        service: service.name().to_string(),
        nodes,
        seed,
        policies,
        pliant_to_precise_energy_ratio: ratio,
        obs,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&figure).expect("serializable")
        );
        return;
    }

    println!(
        "Fleet energy over one diurnal cycle: {} on a {}-machine fleet\n\
         (each machine co-locates one batch job; energy-aware autoscaler; CRN seed {})\n",
        service.name(),
        nodes,
        seed
    );
    let rows: Vec<Vec<String>> = figure
        .policies
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                format!("{:.1} kJ", p.fleet_energy_j / 1e3),
                format!("{:.0} W", p.mean_fleet_power_w),
                format!("{:.1}", p.mean_active_nodes),
                p.min_active_nodes.to_string(),
                format_latency(service, p.fleet_p99_s),
                format!("{:.2}", p.fleet_tail_latency_ratio),
                format!("{:.1}%", p.fleet_qos_violation_fraction * 100.0),
                if p.qos_met { "yes" } else { "no" }.to_string(),
                format!("{:.1} kJ", p.energy_per_completed_job_j / 1e3),
                format!("{:.1}", p.mean_completed_inaccuracy_pct),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "fleet energy",
            "mean power",
            "mean active",
            "min active",
            "fleet p99",
            "p99/QoS",
            "violations",
            "QoS met",
            "energy/job",
            "inacc(%)",
        ],
        &rows,
    );
    println!();
    println!(
        "pliant / precise fleet energy = {:.2} ({:.0}% of the precise fleet's joules at equal QoS)",
        ratio,
        ratio * 100.0
    );
    for t in &figure.obs {
        if let Some(file) = &t.trace_file {
            println!(
                "trace ({}): {} events -> {file}",
                t.run, t.summary.events_recorded
            );
        }
    }
}
