//! Regenerates Figure 5 and the §6.2 headline numbers: Pliant vs the Precise baseline
//! across all 24 approximate applications and all three interactive services.
//!
//! The whole figure is one suite — service × application × {Precise, Pliant} — executed
//! in parallel with common random numbers, so each (precise, pliant) pair sees identical
//! workload randomness.
//!
//! Usage: `fig5_aggregate [--json] [--summary]`

use pliant_approx::catalog::AppId;
use pliant_bench::{print_table, ComparisonRow};
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let summary_only = args.iter().any(|a| a == "--summary");

    let apps = AppId::all();
    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .app(apps[0])
            .horizon_intervals(70)
            .build(),
    )
    .named("fig5")
    .for_each_service(ServiceId::all())
    .for_each_app(apps)
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);

    let results = Engine::new().parallel().run_collect(&suite);

    // Cells arrive in grid order: for each service, for each app, [precise, pliant].
    let all_rows: Vec<ComparisonRow> = results
        .chunks_exact(2)
        .map(|pair| {
            ComparisonRow::from_outcomes(
                pair[0].scenario.apps[0],
                &pair[0].outcome,
                &pair[1].outcome,
            )
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&all_rows).expect("serializable rows")
        );
        return;
    }

    if !summary_only {
        println!("Figure 5: Precise vs Pliant (tail latency ratio = p99 / QoS)\n");
        for service in ServiceId::all() {
            println!("== {} ==", service.name());
            let rows: Vec<Vec<String>> = all_rows
                .iter()
                .filter(|r| r.service == service.name())
                .map(|r| {
                    vec![
                        r.app.clone(),
                        format!("{:.2}", r.precise_tail_ratio),
                        format!("{:.2}", r.pliant_tail_ratio),
                        format!("{:.2}", r.pliant_relative_exec_time),
                        format!("{:.1}", r.pliant_inaccuracy_pct),
                        format!("{:.1}%", r.instrumentation_overhead * 100.0),
                        r.max_cores_reclaimed.to_string(),
                    ]
                })
                .collect();
            print_table(
                &[
                    "app",
                    "precise p99/QoS",
                    "pliant p99/QoS",
                    "rel. exec time",
                    "inaccuracy(%)",
                    "instr. overhead",
                    "max cores",
                ],
                &rows,
            );
            println!();
        }
    }

    // §6.2 headline numbers.
    let pliant_met = all_rows
        .iter()
        .filter(|r| r.pliant_tail_ratio <= 1.05)
        .count();
    let precise_violating = all_rows
        .iter()
        .filter(|r| r.precise_tail_ratio > 1.0)
        .count();
    let mean_inacc: f64 = all_rows
        .iter()
        .map(|r| r.pliant_inaccuracy_pct)
        .sum::<f64>()
        / all_rows.len() as f64;
    let max_inacc = all_rows
        .iter()
        .map(|r| r.pliant_inaccuracy_pct)
        .fold(0.0f64, f64::max);
    let mean_overhead: f64 = all_rows
        .iter()
        .map(|r| r.instrumentation_overhead)
        .sum::<f64>()
        / all_rows.len() as f64;
    let max_overhead = all_rows
        .iter()
        .map(|r| r.instrumentation_overhead)
        .fold(0.0f64, f64::max);
    let precise_range = (
        all_rows
            .iter()
            .map(|r| r.precise_tail_ratio)
            .fold(f64::INFINITY, f64::min),
        all_rows
            .iter()
            .map(|r| r.precise_tail_ratio)
            .fold(0.0f64, f64::max),
    );

    println!("Section 6.2 headline summary");
    println!(
        "  colocations where Pliant keeps p99 within ~QoS : {}/{}",
        pliant_met,
        all_rows.len()
    );
    println!(
        "  colocations where Precise violates QoS          : {}/{}",
        precise_violating,
        all_rows.len()
    );
    println!(
        "  Precise tail-latency ratio range                : {:.2}x - {:.2}x",
        precise_range.0, precise_range.1
    );
    println!(
        "  mean / max output-quality loss under Pliant     : {:.1}% / {:.1}%",
        mean_inacc, max_inacc
    );
    println!(
        "  mean / max dynamic-instrumentation overhead      : {:.1}% / {:.1}%",
        mean_overhead * 100.0,
        max_overhead * 100.0
    );
}
