//! Regenerates Figure 4: Pliant's dynamic behaviour over time.
//!
//! For each interactive service co-located with each of four representative approximate
//! applications (canneal, raytrace, Bayesian, SNP), prints the per-interval tail latency,
//! cores reclaimed by the service, and the active approximate variant.
//!
//! Usage: `fig4_dynamic_behavior [--json]`

use pliant_bench::{dynamic_behavior_apps, format_latency, print_table};
use pliant_core::engine::Engine;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct TraceRow {
    time_s: f64,
    p99_latency_s: f64,
    qos_target_s: f64,
    reclaimed_cores: f64,
    variant: f64,
}

#[derive(Serialize)]
struct TraceResult {
    service: String,
    app: String,
    rows: Vec<TraceRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);

    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .app(dynamic_behavior_apps()[0])
            .horizon_intervals(60)
            .build(),
    )
    .named("fig4")
    .for_each_service(ServiceId::all())
    .for_each_app(dynamic_behavior_apps());

    let cells = Engine::new().parallel().run_collect(&suite);

    let results: Vec<TraceResult> = cells
        .iter()
        .map(|cell| {
            let app = cell.scenario.apps[0];
            let outcome = &cell.outcome;
            let latency = outcome.trace.get("p99_latency_s").expect("latency series");
            let cores = outcome
                .trace
                .get(&format!("reclaimed_{}", app.name()))
                .expect("reclaimed series");
            let variant = outcome
                .trace
                .get(&format!("variant_{}", app.name()))
                .expect("variant series");
            let rows: Vec<TraceRow> = latency
                .points()
                .iter()
                .zip(cores.points().iter())
                .zip(variant.points().iter())
                .map(|((l, c), v)| TraceRow {
                    time_s: l.time_s,
                    p99_latency_s: l.value,
                    qos_target_s: outcome.qos_target_s,
                    reclaimed_cores: c.value,
                    variant: v.value,
                })
                .collect();
            TraceResult {
                service: cell.scenario.service.name().to_string(),
                app: app.name().to_string(),
                rows,
            }
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("serializable")
        );
        return;
    }

    println!("Figure 4: Pliant dynamic behaviour (tail latency, reclaimed cores, variant)\n");
    for r in &results {
        let service: ServiceId = ServiceId::all()
            .into_iter()
            .find(|s| s.name() == r.service)
            .expect("known service");
        println!(
            "== {} + {} (QoS {}) ==",
            r.service,
            r.app,
            format_latency(service, r.rows[0].qos_target_s)
        );
        let rows: Vec<Vec<String>> = r
            .rows
            .iter()
            .map(|row| {
                vec![
                    format!("{:.0}", row.time_s),
                    format_latency(service, row.p99_latency_s),
                    format!("{:.0}", row.reclaimed_cores),
                    if row.variant == 0.0 {
                        "precise".to_string()
                    } else {
                        format!("v{:.0}", row.variant)
                    },
                ]
            })
            .collect();
        print_table(&["t(s)", "p99", "cores reclaimed", "variant"], &rows);
        println!();
    }
}
