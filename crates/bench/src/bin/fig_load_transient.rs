//! Load-transient figure: Pliant riding a flash crowd.
//!
//! The paper's headline claim is that approximation absorbs *load fluctuations*. This
//! binary drives one interactive service through a flash crowd (steady base load, a steep
//! ramp to saturation, a hold, and a decay back) under both the Precise baseline and
//! Pliant, with common random numbers so both policies see the identical arrival stream.
//! It prints the interval-by-interval timeline under Pliant — offered load, tail latency,
//! active variant, reclaimed cores — followed by the per-phase QoS summary of both
//! policies (violation rate during ramp-up vs. peak vs. steady state).
//!
//! Usage: `fig_load_transient [--json] [--service nginx|memcached|mongodb]`

use pliant_approx::catalog::AppId;
use pliant_bench::{format_latency, print_table};
use pliant_core::engine::Engine;
use pliant_core::experiment::PhaseQosStats;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::profile::LoadProfile;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

/// The flash crowd every run uses: steady at 35% of saturation, a 2 s ramp to full
/// saturation at t = 10 s, an 8 s hold, and a 2 s decay back. Compressed so the
/// co-scheduled application stays alive through the recovery tail.
fn flash_crowd() -> LoadProfile {
    LoadProfile::FlashCrowd {
        base: 0.35,
        peak: 1.0,
        start_s: 10.0,
        ramp_s: 2.0,
        hold_s: 8.0,
        decay_s: 2.0,
    }
}

#[derive(Serialize)]
struct TimelineRow {
    time_s: f64,
    offered_load: f64,
    p99_latency_s: f64,
    qos_target_s: f64,
    variant: f64,
    cores_reclaimed: f64,
}

#[derive(Serialize)]
struct TransientResult {
    service: String,
    app: String,
    policy: String,
    phase_qos: Vec<PhaseQosStats>,
    timeline: Vec<TimelineRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let service = args
        .iter()
        .position(|a| a == "--service")
        .and_then(|i| args.get(i + 1))
        .map(|name| {
            ServiceId::all()
                .into_iter()
                .find(|s| s.name() == name)
                .unwrap_or_else(|| {
                    eprintln!("error: unknown service `{name}`");
                    std::process::exit(2);
                })
        })
        .unwrap_or(ServiceId::Memcached);
    let app = AppId::Bayesian;

    let base = Scenario::builder(service)
        .app(app)
        .load_profile(flash_crowd())
        .horizon_seconds(45.0)
        .stop_when_apps_finish(false)
        .seed(77)
        .build();
    let suite = Suite::new(base)
        .named("load-transient")
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
    let cells = Engine::new().parallel().run_collect(&suite);

    let results: Vec<TransientResult> = cells
        .iter()
        .map(|cell| {
            let outcome = &cell.outcome;
            let latency = outcome.trace.get("p99_latency_s").expect("latency series");
            let load = outcome.trace.get("offered_load").expect("load series");
            let variant = outcome
                .trace
                .get(&format!("variant_{}", app.name()))
                .expect("variant series");
            let reclaimed = outcome
                .trace
                .get(&format!("reclaimed_{}", app.name()))
                .expect("reclaimed series");
            let timeline: Vec<TimelineRow> = latency
                .points()
                .iter()
                .zip(load.points())
                .zip(variant.points())
                .zip(reclaimed.points())
                .map(|(((l, ld), v), r)| TimelineRow {
                    time_s: l.time_s,
                    offered_load: ld.value,
                    p99_latency_s: l.value,
                    qos_target_s: outcome.qos_target_s,
                    variant: v.value,
                    cores_reclaimed: r.value,
                })
                .collect();
            TransientResult {
                service: service.name().to_string(),
                app: app.name().to_string(),
                policy: cell.scenario.policy.to_string(),
                phase_qos: outcome.phase_qos.clone(),
                timeline,
            }
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("serializable")
        );
        return;
    }

    println!(
        "Load transient: {} + {} through a flash crowd ({})\n",
        service.name(),
        app.name(),
        flash_crowd().describe()
    );

    let pliant = results
        .iter()
        .find(|r| r.policy == "pliant")
        .expect("pliant cell");
    println!("Pliant timeline (every 3rd interval):");
    let rows: Vec<Vec<String>> = pliant
        .timeline
        .iter()
        .step_by(3)
        .map(|row| {
            vec![
                format!("{:.0}", row.time_s),
                format!("{:.0}%", row.offered_load * 100.0),
                format_latency(service, row.p99_latency_s),
                if row.variant == 0.0 {
                    "precise".to_string()
                } else {
                    format!("v{:.0}", row.variant)
                },
                format!("{:.0}", row.cores_reclaimed),
            ]
        })
        .collect();
    print_table(
        &["t(s)", "load", "p99", "variant", "cores reclaimed"],
        &rows,
    );

    println!("\nPer-phase QoS (violation rate during ramp vs. steady state):");
    let mut phase_rows: Vec<Vec<String>> = Vec::new();
    for r in &results {
        for p in &r.phase_qos {
            phase_rows.push(vec![
                r.policy.clone(),
                p.phase.name().to_string(),
                p.intervals.to_string(),
                format!("{:.0}%", p.mean_offered_load * 100.0),
                format!("{:.0}%", p.qos_violation_fraction * 100.0),
                format_latency(service, p.mean_p99_s),
            ]);
        }
    }
    print_table(
        &[
            "policy",
            "phase",
            "intervals",
            "mean load",
            "violations",
            "mean p99",
        ],
        &phase_rows,
    );
}
