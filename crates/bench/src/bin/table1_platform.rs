//! Regenerates Table 1: the platform specification the simulator models.

use pliant_bench::print_table;
use pliant_sim::server::ServerSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let spec = ServerSpec::paper_platform();
    if pliant_bench::json_requested(&args) {
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).expect("serializable spec")
        );
        return;
    }
    println!("Table 1: Platform Specification (modelled)\n");
    let rows: Vec<Vec<String>> = spec
        .table1_rows()
        .into_iter()
        .map(|(k, v)| vec![k, v])
        .collect();
    print_table(&["Field", "Value"], &rows);
    println!(
        "\nUsable cores for colocation: {} (of {} per socket; {} reserved for soft IRQ)",
        spec.usable_cores(),
        spec.cores_per_socket,
        spec.irq_cores
    );
}
