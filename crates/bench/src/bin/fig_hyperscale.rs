//! Hyperscale figure: the paper's fleet headlines at datacenter scale.
//!
//! The machines-needed and energy results are measured on single-digit fleets because
//! exact simulation steps every node. This binary rescales both studies to 10k–100k
//! logical nodes using the clustered fleet approximation: the population is grouped
//! into interchangeable-node clusters, a handful of representatives per group is
//! simulated under common random numbers, and each representative's contribution is
//! replicated per logical node it stands for. The sweep that takes minutes per point
//! exactly finishes interactively, because the instance count depends on the job mix
//! (a few groups), not the fleet size.
//!
//! Two headlines are reported:
//!
//! * **Machines needed** — the fig_cluster sweep scaled to the requested fleet: the
//!   same per-node operating pressure, fleet sizes swept around the requested size,
//!   and the smallest QoS-passing fleet per policy.
//! * **Energy** — the fig_energy day/night cycle scaled to the requested fleet, with
//!   the autoscaler sizing the active set and the Pliant/Precise joule ratio.
//!
//! Usage: `fig_hyperscale [--json] [--seed N] [--nodes N] [--approx K]
//!                        [--trace PATH] [--trace-level off|decisions|full]`
//!
//! Defaults: 10k nodes, 4 representatives per group, seed 7. `--approx 0` forces
//! exact simulation (every logical node stepped) — only interactive on small fleets.
//! `--trace PATH` exports the two day/night energy runs' decision-event streams to
//! `PATH` tagged `energy-{policy}` (`.json` = Chrome trace-event JSON loadable in
//! Perfetto, otherwise JSON Lines readable by `pliant-trace`); the machines sweep is
//! left untraced so the interactivity headline stays a pure simulation timing.

use std::time::Instant;

use pliant_bench::{
    approximation_from_args, cluster_energy_scenario_at_scale, cluster_machines_needed_scenario,
    export_trace, flag_value, format_latency, print_table, trace_opts, TraceRunSummary,
};
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

/// The fig_cluster sweep expressed as sixths of the requested fleet (3/6 .. 7/6), so
/// the 6-node study's operating points reappear unchanged at any scale.
const SWEEP_SIXTHS: [usize; 5] = [3, 4, 5, 6, 7];

#[derive(Serialize)]
struct SweepPoint {
    nodes: usize,
    simulated_instances: usize,
    policy: String,
    fleet_p99_s: f64,
    fleet_tail_latency_ratio: f64,
    fleet_qos_violation_fraction: f64,
    qos_met: bool,
}

#[derive(Serialize)]
struct EnergyPoint {
    policy: String,
    simulated_instances: usize,
    fleet_energy_j: f64,
    mean_fleet_power_w: f64,
    mean_active_nodes: f64,
    min_active_nodes: usize,
    fleet_tail_latency_ratio: f64,
    fleet_qos_violation_fraction: f64,
    qos_met: bool,
}

#[derive(Serialize)]
struct HyperscaleFigure {
    service: String,
    seed: u64,
    fleet_nodes: usize,
    /// Representatives simulated per node group (`0` = exact simulation).
    approx_representatives: usize,
    machines_curve: Vec<SweepPoint>,
    machines_needed_precise: Option<usize>,
    machines_needed_pliant: Option<usize>,
    energy: Vec<EnergyPoint>,
    pliant_to_precise_energy_ratio: f64,
    /// Logical node-intervals covered per wall-clock second by the day/night energy
    /// run — the interactivity headline (exact simulation advances `nodes` instances
    /// per interval; the approximation covers the same logical work with a handful).
    effective_node_intervals_per_sec: f64,
    energy_run_elapsed_s: f64,
    /// Per-run observability rollups for the energy runs (empty when untraced).
    obs: Vec<TraceRunSummary>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let seed: u64 = flag_value(&args, "--seed").map_or(7, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed expects an integer");
            std::process::exit(2);
        })
    });
    let fleet_nodes: usize = flag_value(&args, "--nodes").map_or(10_000, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --nodes expects an integer");
            std::process::exit(2);
        })
    });
    if fleet_nodes < 6 {
        eprintln!("error: --nodes must be at least 6 (the sweep scales the 6-node study)");
        std::process::exit(2);
    }
    let approximation = if args.iter().any(|a| a == "--approx") {
        approximation_from_args(&args)
    } else {
        FleetApproximation::Clustered {
            representatives_per_group: 4,
        }
    };
    let approx_representatives = match approximation {
        FleetApproximation::Exact => 0,
        FleetApproximation::Clustered {
            representatives_per_group,
        } => representatives_per_group,
    };

    let trace = trace_opts(&args);

    let service = ServiceId::Memcached;
    let engine = Engine::new().parallel();

    // Machines needed at scale: the fig_cluster pressure (2.6 node-units per 6
    // provisioned nodes) over fleet sizes swept around the requested one.
    let total_load = 2.6 / 6.0 * fleet_nodes as f64;
    let mut machines_curve = Vec::new();
    let mut sweeps: [Vec<(usize, ClusterOutcome)>; 2] = [Vec::new(), Vec::new()];
    for &sixths in &SWEEP_SIXTHS {
        let nodes = sixths * fleet_nodes / 6;
        for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
            .into_iter()
            .enumerate()
        {
            let Some(mut s) = cluster_machines_needed_scenario(nodes, total_load, policy, seed)
            else {
                eprintln!("note: skipping {nodes}-machine fleet — load exceeds saturation");
                continue;
            };
            s.approximation = approximation;
            let outcome = engine.run_cluster(&s);
            machines_curve.push(SweepPoint {
                nodes,
                simulated_instances: outcome.simulated_instances,
                policy: policy.to_string(),
                fleet_p99_s: outcome.fleet_p99_s,
                fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
                fleet_qos_violation_fraction: outcome.fleet_qos_violation_fraction,
                qos_met: outcome.qos_met(),
            });
            sweeps[pi].push((nodes, outcome));
        }
    }
    let machines_precise = machines_needed(&sweeps[0]);
    let machines_pliant = machines_needed(&sweeps[1]);

    // Energy at scale: the day/night cycle on the requested fleet, timed — the
    // wall-clock of this run is the interactivity headline.
    let mut energy = Vec::new();
    let mut energies = [0.0f64; 2];
    let mut node_intervals = 0u64;
    let mut energy_logs = Vec::new();
    let started = Instant::now();
    for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
        .into_iter()
        .enumerate()
    {
        let mut scenario = cluster_energy_scenario_at_scale(fleet_nodes, policy, seed);
        scenario.approximation = approximation;
        let (outcome, log) = engine.run_cluster_traced(&scenario, trace.level);
        if trace.enabled() {
            energy_logs.push((format!("energy-{policy}"), log));
        }
        energies[pi] = outcome.fleet_energy_j;
        node_intervals += (outcome.nodes * outcome.intervals) as u64;
        energy.push(EnergyPoint {
            policy: policy.to_string(),
            simulated_instances: outcome.simulated_instances,
            fleet_energy_j: outcome.fleet_energy_j,
            mean_fleet_power_w: outcome.mean_fleet_power_w,
            mean_active_nodes: outcome.mean_active_nodes,
            min_active_nodes: outcome.min_active_nodes,
            fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
            fleet_qos_violation_fraction: outcome.fleet_qos_violation_fraction,
            qos_met: outcome.qos_met(),
        });
    }
    let energy_run_elapsed_s = started.elapsed().as_secs_f64();
    let ratio = energies[1] / energies[0];
    // File export happens after the clock stops, so the interactivity headline times
    // the simulation (including in-memory event recording), not disk I/O.
    let obs: Vec<TraceRunSummary> = energy_logs
        .iter()
        .map(|(run, log)| export_trace(&trace, run, log))
        .collect();

    let figure = HyperscaleFigure {
        service: service.name().to_string(),
        seed,
        fleet_nodes,
        approx_representatives,
        machines_curve,
        machines_needed_precise: machines_precise,
        machines_needed_pliant: machines_pliant,
        energy,
        pliant_to_precise_energy_ratio: ratio,
        effective_node_intervals_per_sec: node_intervals as f64 / energy_run_elapsed_s,
        energy_run_elapsed_s,
        obs,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&figure).expect("serializable")
        );
        return;
    }

    let mode = if approx_representatives == 0 {
        "exact simulation".to_string()
    } else {
        format!("clustered approximation, {approx_representatives} representatives per group")
    };
    println!(
        "Hyperscale fleet headlines: {} around {} machines ({mode}; CRN seed {})\n",
        service.name(),
        fleet_nodes,
        seed
    );

    let rows: Vec<Vec<String>> = figure
        .machines_curve
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.simulated_instances.to_string(),
                p.policy.clone(),
                format_latency(service, p.fleet_p99_s),
                format!("{:.2}", p.fleet_tail_latency_ratio),
                format!("{:.1}%", p.fleet_qos_violation_fraction * 100.0),
                if p.qos_met { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "machines",
            "simulated",
            "policy",
            "fleet p99",
            "p99/QoS",
            "violations",
            "QoS met",
        ],
        &rows,
    );
    let describe = |m: Option<usize>| match m {
        Some(n) => n.to_string(),
        None => format!(
            ">{}",
            SWEEP_SIXTHS[SWEEP_SIXTHS.len() - 1] * fleet_nodes / 6
        ),
    };
    println!(
        "\nmachines needed: precise = {}, pliant = {}",
        describe(machines_precise),
        describe(machines_pliant)
    );
    if let (Some(p), Some(q)) = (machines_precise, machines_pliant) {
        if q < p {
            println!(
                "pliant serves the same load with {} fewer machines ({:.0}% of the precise fleet)",
                p - q,
                100.0 * q as f64 / p as f64
            );
        }
    }

    println!("\nDay/night energy on the {}-machine fleet:\n", fleet_nodes);
    let rows: Vec<Vec<String>> = figure
        .energy
        .iter()
        .map(|p| {
            vec![
                p.policy.clone(),
                p.simulated_instances.to_string(),
                format!("{:.1} MJ", p.fleet_energy_j / 1e6),
                format!("{:.1} kW", p.mean_fleet_power_w / 1e3),
                format!("{:.1}", p.mean_active_nodes),
                p.min_active_nodes.to_string(),
                format!("{:.2}", p.fleet_tail_latency_ratio),
                if p.qos_met { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "simulated",
            "fleet energy",
            "mean power",
            "mean active",
            "min active",
            "p99/QoS",
            "QoS met",
        ],
        &rows,
    );
    println!(
        "\npliant / precise fleet energy = {:.2} ({:.0}% of the precise fleet's joules)",
        ratio,
        ratio * 100.0
    );
    println!(
        "energy runs covered {:.1}M logical node-intervals in {:.2} s \
         ({:.1}M node-intervals/s effective)",
        node_intervals as f64 / 1e6,
        energy_run_elapsed_s,
        figure.effective_node_intervals_per_sec / 1e6
    );
    for t in &figure.obs {
        if let Some(file) = &t.trace_file {
            println!(
                "trace ({}): {} events -> {file}",
                t.run, t.summary.events_recorded
            );
        }
    }
}
