//! `pliant-trace`: inspect the JSONL decision-event streams the `--trace` flags of
//! the fleet figure binaries export (see `pliant_telemetry::obs`).
//!
//! Subcommands:
//!
//! * `summary FILE` — per-kind event counts (raw and replica-weighted), interval
//!   coverage, and the run's shape from its `FleetStart` record.
//! * `filter FILE [--kind K] [--node N] [--from-interval A] [--to-interval B]` —
//!   re-emit matching records as JSONL (composable with itself and other tools).
//! * `diff A B` — compare two streams' per-kind counters; exits 1 when the weighted
//!   counters differ (0 when the two runs recorded the same logical decision counts).
//! * `explain FILE --violation N [--node M] [--window W]` — the causal window query:
//!   show everything that happened to the violating node (and the fleet) around the
//!   `N`-th QoS violation (on node `M`, when given), `W` intervals to each side.
//! * `narrative FILE...` — reconstruct the machines-needed narrative from the logs
//!   alone: per file, the fleet size and QoS verdict from `FleetStart` +
//!   `IntervalSummary` records; across files, the smallest passing fleet.
//!
//! Input must be JSON Lines (one `EventRecord` per line). Chrome trace-event `.json`
//! exports are for Perfetto; re-export with a non-`.json` extension to inspect here.

use std::io::{BufRead, BufReader};

use pliant_bench::print_table;
use pliant_telemetry::obs::{Event, EventKind, EventRecord, EVENT_KINDS};

fn usage() -> ! {
    eprintln!(
        "usage: pliant-trace <summary|filter|diff|explain|narrative> [options] FILE...\n\
         \n\
         summary FILE                         per-kind counts and run shape\n\
         filter FILE [--kind K] [--node N]\n\
         \x20      [--from-interval A] [--to-interval B]   re-emit matching JSONL\n\
         diff A B                             compare per-kind counters (exit 1 on drift)\n\
         explain FILE --violation N\n\
         \x20      [--node M] [--window W]    events around the N-th QoS violation\n\
         narrative FILE...                    machines-needed story from the logs alone"
    );
    std::process::exit(2);
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag_value(args, name).map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a number");
            std::process::exit(2);
        })
    })
}

/// Positional (non-flag) arguments: everything not starting with `--` and not
/// consumed as a flag value.
fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Every flag of this tool takes a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(a);
    }
    out
}

fn load(path: &str) -> Vec<EventRecord> {
    if path.ends_with(".json") {
        eprintln!(
            "error: {path} looks like a Chrome trace-event export (for Perfetto); \
             pliant-trace reads the JSONL format — re-export with a non-.json extension"
        );
        std::process::exit(2);
    }
    let file = std::fs::File::open(path).unwrap_or_else(|e| {
        eprintln!("error: cannot open {path}: {e}");
        std::process::exit(1);
    });
    let mut records = Vec::new();
    for (ln, line) in BufReader::new(file).lines().enumerate() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        });
        if line.trim().is_empty() {
            continue;
        }
        let record: EventRecord = serde_json::from_str(&line).unwrap_or_else(|e| {
            eprintln!("error: {path}:{}: not an event record: {e}", ln + 1);
            std::process::exit(1);
        });
        records.push(record);
    }
    records
}

/// Per-kind (raw, weighted) counters over a record slice — the offline analogue of
/// the run's `MetricsRegistry` (restricted to retained records).
fn count_kinds(records: &[EventRecord]) -> ([u64; EVENT_KINDS], [u64; EVENT_KINDS]) {
    let mut counts = [0u64; EVENT_KINDS];
    let mut weighted = [0u64; EVENT_KINDS];
    for r in records {
        let i = r.event.kind() as usize;
        counts[i] += 1;
        weighted[i] += r.weight as u64;
    }
    (counts, weighted)
}

fn describe(r: &EventRecord) -> String {
    let who = match r.source {
        0 => "fleet".to_string(),
        s => format!("node {}", s - 1),
    };
    format!(
        "[{:>5}] t={:>8.2}s  {:<8} {:?}",
        r.interval, r.time_s, who, r.event
    )
}

fn cmd_summary(records: &[EventRecord], path: &str) {
    println!("{path}: {} records", records.len());
    if let Some(r) = records
        .iter()
        .find(|r| r.event.kind() == EventKind::FleetStart)
    {
        if let Event::FleetStart {
            nodes,
            instances,
            slots_per_node,
            qos_target_s,
        } = r.event
        {
            println!(
                "fleet: {nodes} logical nodes on {instances} simulated instances, \
                 {slots_per_node} batch slots/node, QoS target {:.1} ms",
                qos_target_s * 1e3
            );
        }
    }
    if let (Some(first), Some(last)) = (records.first(), records.last()) {
        println!(
            "intervals {}..{} ({:.1}s..{:.1}s of sim time)",
            first.interval, last.interval, first.time_s, last.time_s
        );
    }
    println!();
    let (counts, weighted) = count_kinds(records);
    let rows: Vec<Vec<String>> = EventKind::ALL
        .iter()
        .filter(|k| counts[**k as usize] > 0)
        .map(|k| {
            vec![
                k.name().to_string(),
                counts[*k as usize].to_string(),
                weighted[*k as usize].to_string(),
            ]
        })
        .collect();
    print_table(&["event", "records", "weighted"], &rows);
}

fn cmd_filter(records: &[EventRecord], args: &[String]) {
    let kind = flag_value(args, "--kind").map(|v| {
        EventKind::parse(v).unwrap_or_else(|| {
            eprintln!(
                "error: unknown event kind {v} (expected one of: {})",
                EventKind::ALL.map(|k| k.name()).join(", ")
            );
            std::process::exit(2);
        })
    });
    let node: Option<u32> = parse_flag(args, "--node");
    let from: u32 = parse_flag(args, "--from-interval").unwrap_or(0);
    let to: u32 = parse_flag(args, "--to-interval").unwrap_or(u32::MAX);
    for r in records {
        if r.interval < from || r.interval > to {
            continue;
        }
        if let Some(k) = kind {
            if r.event.kind() != k {
                continue;
            }
        }
        if let Some(n) = node {
            if r.event.node() != Some(n) {
                continue;
            }
        }
        println!("{}", serde_json::to_string(r).expect("records serialize"));
    }
}

fn cmd_diff(a_path: &str, b_path: &str) {
    let a = load(a_path);
    let b = load(b_path);
    let (a_counts, a_weighted) = count_kinds(&a);
    let (b_counts, b_weighted) = count_kinds(&b);
    let mut drifted = false;
    let rows: Vec<Vec<String>> = EventKind::ALL
        .iter()
        .filter(|k| a_counts[**k as usize] > 0 || b_counts[**k as usize] > 0)
        .map(|k| {
            let i = *k as usize;
            let delta = b_weighted[i] as i64 - a_weighted[i] as i64;
            if delta != 0 {
                drifted = true;
            }
            vec![
                k.name().to_string(),
                format!("{} ({}w)", a_counts[i], a_weighted[i]),
                format!("{} ({}w)", b_counts[i], b_weighted[i]),
                format!("{delta:+}"),
            ]
        })
        .collect();
    print_table(&["event", a_path, b_path, "weighted delta"], &rows);
    if drifted {
        println!("\nstreams differ (weighted logical event counts drifted)");
        std::process::exit(1);
    }
    println!("\nstreams agree on every weighted logical event count");
}

fn cmd_explain(records: &[EventRecord], args: &[String]) {
    let ordinal: usize = parse_flag(args, "--violation").unwrap_or_else(|| {
        eprintln!("error: explain requires --violation N (1-based)");
        std::process::exit(2);
    });
    let node: Option<u32> = parse_flag(args, "--node");
    let window: u32 = parse_flag(args, "--window").unwrap_or(3);
    if ordinal == 0 {
        eprintln!("error: --violation is 1-based");
        std::process::exit(2);
    }
    let target = records
        .iter()
        .filter(|r| r.event.kind() == EventKind::QosViolation)
        .filter(|r| node.is_none() || r.event.node() == node)
        .nth(ordinal - 1)
        .unwrap_or_else(|| {
            let scope = node.map_or(String::new(), |n| format!(" on node {n}"));
            eprintln!("error: the log holds no {ordinal}-th QoS violation{scope}");
            std::process::exit(1);
        });
    let violating_node = target.event.node();
    let lo = target.interval.saturating_sub(window);
    let hi = target.interval.saturating_add(window);
    println!(
        "QoS violation #{ordinal}{}: interval {}, t={:.2}s",
        violating_node.map_or(String::new(), |n| format!(" (node {n})")),
        target.interval,
        target.time_s
    );
    println!("causal window: intervals {lo}..{hi}, the node's events plus fleet events\n");
    for r in records {
        if r.interval < lo || r.interval > hi {
            continue;
        }
        // Keep the violating node's own chain and every fleet-scope event (interval
        // rollups, placements onto the node are node-scoped and already kept).
        let keep = match r.event.node() {
            Some(n) => Some(n) == violating_node,
            None => true,
        };
        if !keep {
            continue;
        }
        let marker = if std::ptr::eq(r, target) {
            " <-- here"
        } else {
            ""
        };
        println!("{}{marker}", describe(r));
    }
}

/// One run's machines-needed verdict, reconstructed purely from its event stream.
struct RunVerdict {
    path: String,
    nodes: u32,
    busy: u64,
    violating: u64,
    qos_met: bool,
}

fn verdict(path: &str) -> RunVerdict {
    let records = load(path);
    let nodes = records
        .iter()
        .find_map(|r| match r.event {
            Event::FleetStart { nodes, .. } => Some(nodes),
            _ => None,
        })
        .unwrap_or_else(|| {
            eprintln!("error: {path} has no FleetStart record; was it traced from the start?");
            std::process::exit(1);
        });
    let mut busy = 0u64;
    let mut violating = 0u64;
    for r in &records {
        if let Event::IntervalSummary {
            busy: b,
            violating: v,
            ..
        } = r.event
        {
            busy += b as u64;
            violating += v as u64;
        }
    }
    // The same 5%-of-busy-node-intervals allowance ClusterOutcome::qos_met applies.
    let qos_met = violating as f64 <= 0.05 * busy as f64 && busy > 0;
    RunVerdict {
        path: path.to_string(),
        nodes,
        busy,
        violating,
        qos_met,
    }
}

fn cmd_narrative(paths: &[&String]) {
    let verdicts: Vec<RunVerdict> = paths.iter().map(|p| verdict(p)).collect();
    let rows: Vec<Vec<String>> = verdicts
        .iter()
        .map(|v| {
            vec![
                v.path.clone(),
                v.nodes.to_string(),
                v.busy.to_string(),
                v.violating.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * v.violating as f64 / (v.busy.max(1)) as f64
                ),
                if v.qos_met { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "log",
            "machines",
            "busy node-intervals",
            "violating",
            "violation rate",
            "QoS met",
        ],
        &rows,
    );
    match verdicts.iter().filter(|v| v.qos_met).map(|v| v.nodes).min() {
        Some(n) => println!("\nmachines needed (smallest passing fleet in these logs): {n}"),
        None => println!("\nno fleet in these logs met the 5% QoS allowance"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];
    let files = positional(rest);
    match cmd.as_str() {
        "summary" => {
            let [path] = files[..] else { usage() };
            cmd_summary(&load(path), path);
        }
        "filter" => {
            let [path] = files[..] else { usage() };
            cmd_filter(&load(path), rest);
        }
        "diff" => {
            let [a, b] = files[..] else { usage() };
            cmd_diff(a, b);
        }
        "explain" => {
            let [path] = files[..] else { usage() };
            cmd_explain(&load(path), rest);
        }
        "narrative" => {
            if files.is_empty() {
                usage();
            }
            cmd_narrative(&files);
        }
        _ => usage(),
    }
}
