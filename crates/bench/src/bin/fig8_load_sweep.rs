//! Regenerates Figure 8: Pliant across input-load levels (40%–100% of saturation) for each
//! interactive service and every approximate application.
//!
//! One suite — service × application × load — executed in parallel.
//!
//! Usage: `fig8_load_sweep [--json] [--apps N]`

use pliant_approx::catalog::AppId;
use pliant_bench::print_table;
use pliant_core::engine::Engine;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct LoadRow {
    service: String,
    app: String,
    load_fraction: f64,
    qps: f64,
    tail_latency_vs_qos: f64,
    qos_violation_fraction: f64,
    relative_execution_time: f64,
    inaccuracy_pct: f64,
    max_cores_reclaimed: u32,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let app_limit = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(24);

    let loads = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let apps: Vec<AppId> = AppId::all().into_iter().take(app_limit).collect();
    if apps.is_empty() {
        eprintln!("error: --apps must be at least 1");
        std::process::exit(2);
    }

    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .app(apps[0])
            .horizon_intervals(40)
            .build(),
    )
    .named("fig8")
    .for_each_service(ServiceId::all())
    .for_each_app(apps)
    .sweep_loads(loads);

    let results = Engine::new().parallel().run_collect(&suite);

    let rows: Vec<LoadRow> = results
        .iter()
        .map(|cell| {
            let service = cell.scenario.service;
            let profile = pliant_workloads::service::ServiceProfile::paper_default(service);
            let a = &cell.outcome.app_outcomes[0];
            LoadRow {
                service: service.name().to_string(),
                app: cell.scenario.apps[0].name().to_string(),
                load_fraction: cell.scenario.load_fraction,
                qps: profile.qps_at_load(cell.scenario.load_fraction),
                tail_latency_vs_qos: cell.outcome.tail_latency_ratio,
                qos_violation_fraction: cell.outcome.qos_violation_fraction,
                relative_execution_time: a.relative_execution_time,
                inaccuracy_pct: a.inaccuracy_pct,
                max_cores_reclaimed: cell.outcome.max_extra_service_cores,
            }
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
        return;
    }

    println!("Figure 8: Pliant across input load levels\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.service.clone(),
                r.app.clone(),
                format!("{:.0}%", r.load_fraction * 100.0),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.tail_latency_vs_qos),
                format!("{:.2}", r.relative_execution_time),
                format!("{:.1}", r.inaccuracy_pct),
                r.max_cores_reclaimed.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "service",
            "app",
            "load",
            "QPS",
            "p99/QoS",
            "rel. exec",
            "inacc(%)",
            "max cores",
        ],
        &table,
    );
}
