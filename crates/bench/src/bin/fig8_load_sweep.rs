//! Regenerates Figure 8: Pliant across input-load levels (40%–100% of saturation) for each
//! interactive service and every approximate application.
//!
//! Usage: `fig8_load_sweep [--json] [--apps N]`

use pliant_approx::catalog::AppId;
use pliant_bench::print_table;
use pliant_core::experiment::{load_sweep, ExperimentOptions};
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct LoadRow {
    service: String,
    app: String,
    load_fraction: f64,
    qps: f64,
    tail_latency_vs_qos: f64,
    qos_violation_fraction: f64,
    relative_execution_time: f64,
    inaccuracy_pct: f64,
    max_cores_reclaimed: u32,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let app_limit = args
        .iter()
        .position(|a| a == "--apps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(24);

    let loads = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let options = ExperimentOptions {
        max_intervals: 40,
        ..ExperimentOptions::default()
    };

    let mut rows: Vec<LoadRow> = Vec::new();
    for service in ServiceId::all() {
        let profile = pliant_workloads::service::ServiceProfile::paper_default(service);
        for app in AppId::all().into_iter().take(app_limit) {
            for (load, outcome) in load_sweep(service, app, &loads, &options) {
                let a = &outcome.app_outcomes[0];
                rows.push(LoadRow {
                    service: service.name().to_string(),
                    app: app.name().to_string(),
                    load_fraction: load,
                    qps: profile.qps_at_load(load),
                    tail_latency_vs_qos: outcome.tail_latency_ratio,
                    qos_violation_fraction: outcome.qos_violation_fraction,
                    relative_execution_time: a.relative_execution_time,
                    inaccuracy_pct: a.inaccuracy_pct,
                    max_cores_reclaimed: outcome.max_extra_service_cores,
                });
            }
        }
    }

    if json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!("Figure 8: Pliant across input load levels\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.service.clone(),
                r.app.clone(),
                format!("{:.0}%", r.load_fraction * 100.0),
                format!("{:.0}", r.qps),
                format!("{:.2}", r.tail_latency_vs_qos),
                format!("{:.2}", r.relative_execution_time),
                format!("{:.1}", r.inaccuracy_pct),
                r.max_cores_reclaimed.to_string(),
            ]
        })
        .collect();
    print_table(
        &["service", "app", "load", "QPS", "p99/QoS", "rel. exec", "inacc(%)", "max cores"],
        &table,
    );
}
