//! Regenerates Figure 10: the breakdown of colocations where approximation alone was
//! enough to restore QoS versus those needing 1, 2, 3, or 4+ reclaimed cores.
//!
//! The paper aggregates over 1-, 2-, and 3-application mixes; this harness runs all
//! single-application colocations plus a deterministic subset of 2- and 3-way mixes
//! (`--combos N` to change the subset size). Mixes run as one application-set sweep per
//! service with independent per-cell seeds, since the cells are aggregated as independent
//! experiments.
//!
//! Usage: `fig10_breakdown [--json] [--combos N]`

use std::collections::BTreeMap;

use pliant_approx::catalog::AppId;
use pliant_bench::print_table;
use pliant_core::engine::Engine;
use pliant_core::experiment::{classify_effort, EffortClass};
use pliant_core::scenario::Scenario;
use pliant_core::suite::{SeedMode, Suite};
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct BreakdownRow {
    service: String,
    approximation_only: f64,
    one_core: f64,
    two_cores: f64,
    three_cores: f64,
    four_plus_cores: f64,
    experiments: usize,
}

fn mixes(combos: usize) -> Vec<Vec<AppId>> {
    let apps = AppId::all();
    let mut mixes: Vec<Vec<AppId>> = apps.iter().map(|&a| vec![a]).collect();
    // Deterministic 2- and 3-way subsets spread across the application list.
    for i in 0..combos {
        let a = apps[(i * 5) % apps.len()];
        let b = apps[(i * 7 + 3) % apps.len()];
        if a != b {
            mixes.push(vec![a, b]);
        }
        let c = apps[(i * 11 + 6) % apps.len()];
        if a != b && b != c && a != c {
            mixes.push(vec![a, b, c]);
        }
    }
    mixes
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let combos = args
        .iter()
        .position(|a| a == "--combos")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(12);

    let suite = Suite::new(
        Scenario::builder(ServiceId::Nginx)
            .app(AppId::Canneal)
            .horizon_intervals(50)
            .seed(500)
            .build(),
    )
    .named("fig10")
    .seed_mode(SeedMode::Independent)
    .for_each_service(ServiceId::all())
    .for_each_app_set(mixes(combos));

    let engine = Engine::new().parallel();
    let cells = engine.run_collect(&suite);

    let mut rows: Vec<BreakdownRow> = Vec::new();
    for service in ServiceId::all() {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut total = 0usize;
        for cell in cells.iter().filter(|c| c.scenario.service == service) {
            let key = match classify_effort(&cell.outcome) {
                EffortClass::ApproximationOnly => "approx",
                EffortClass::Cores(1) => "1 core",
                EffortClass::Cores(2) => "2 cores",
                EffortClass::Cores(_) => "3 cores",
                EffortClass::FourPlusCores => "4+ cores",
            };
            *counts.entry(key).or_insert(0) += 1;
            total += 1;
        }
        let frac = |k: &str| *counts.get(k).unwrap_or(&0) as f64 / total.max(1) as f64;
        rows.push(BreakdownRow {
            service: service.name().to_string(),
            approximation_only: frac("approx"),
            one_core: frac("1 core"),
            two_cores: frac("2 cores"),
            three_cores: frac("3 cores"),
            four_plus_cores: frac("4+ cores"),
            experiments: total,
        });
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
        return;
    }

    println!("Figure 10: what it took to restore QoS (fraction of colocations)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.service.clone(),
                format!("{:.0}%", r.approximation_only * 100.0),
                format!("{:.0}%", r.one_core * 100.0),
                format!("{:.0}%", r.two_cores * 100.0),
                format!("{:.0}%", r.three_cores * 100.0),
                format!("{:.0}%", r.four_plus_cores * 100.0),
                r.experiments.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "service",
            "approx only",
            "1 core",
            "2 cores",
            "3 cores",
            "4+ cores",
            "experiments",
        ],
        &table,
    );
}
