//! Regenerates Figure 1: the approximation design-space exploration.
//!
//! Odd rows of the paper's figure: for each of the 24 applications, the trade-off between
//! relative execution time and output inaccuracy across examined approximate variants,
//! with the near-pareto variants marked as selected.
//!
//! Even rows: the tail latency (relative to QoS) of each interactive service when
//! statically co-located with the precise version and with each selected variant.
//!
//! Usage: `fig1_design_space [--json] [--skip-colocation]`

use pliant_approx::catalog::{AppId, Catalog};
use pliant_approx::kernels::kernel_for;
use pliant_bench::print_table;
use pliant_core::experiment::{run_colocation_with_config, ExperimentOptions};
use pliant_core::policy::PolicyKind;
use pliant_explore::{explore_kernel, ExplorationConfig};
use pliant_sim::colocation::ColocationConfig;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct AppDesignSpace {
    app: String,
    points: Vec<PointRow>,
    selected_variants: usize,
    colocation: Vec<ColocationRow>,
}

#[derive(Serialize)]
struct PointRow {
    label: String,
    inaccuracy_pct: f64,
    relative_time: f64,
    kind: String,
}

#[derive(Serialize)]
struct ColocationRow {
    service: String,
    variant: String,
    tail_latency_vs_qos: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let skip_colocation = args.iter().any(|a| a == "--skip-colocation");
    let catalog = Catalog::default();
    let dse_config = ExplorationConfig::default();
    let options = ExperimentOptions {
        max_intervals: 25,
        ..ExperimentOptions::default()
    };

    let mut results: Vec<AppDesignSpace> = Vec::new();
    for app in AppId::all() {
        // Odd rows: kernel-level design-space exploration.
        let kernel = kernel_for(app, 2024);
        let exploration = explore_kernel(kernel.as_ref(), &dse_config);
        let points: Vec<PointRow> = exploration
            .measurements
            .iter()
            .map(|m| PointRow {
                label: m.label.clone(),
                inaccuracy_pct: m.inaccuracy_pct,
                relative_time: m.relative_time,
                kind: format!("{:?}", m.kind),
            })
            .collect();

        // Even rows: static colocation of precise + each catalog variant with each service.
        let mut colocation = Vec::new();
        if !skip_colocation {
            let profile = catalog.profile(app).expect("catalog covers all apps");
            for service in ServiceId::all() {
                for variant in std::iter::once(None).chain((0..profile.variant_count()).map(Some)) {
                    let cfg = ColocationConfig::paper_default(service, &[app], 7)
                        .without_instrumentation();
                    // Static colocation: pin the variant via the static policy equivalent —
                    // run precise policy but pre-set the variant through a one-off config.
                    let outcome = {
                        let catalog = Catalog::default();
                        let mut sim_cfg = cfg;
                        sim_cfg.instrumented = variant.is_some();
                        let opts = options;
                        // Use the reclaim-free static approach: run with the Precise policy
                        // after forcing the variant by temporarily replacing the catalog
                        // profile ordering is unnecessary — the simulator exposes
                        // set_variant, which run_colocation_with_config does not call, so
                        // instead we emulate by using the StaticMostApproximate policy only
                        // for the most aggressive variant. For intermediate variants we
                        // construct a single-variant catalog.
                        let single_variant_catalog = match variant {
                            None => catalog,
                            Some(v) => {
                                let c = catalog;
                                let mut p = c.profile(app).unwrap().clone();
                                let chosen = p.variants[v].clone();
                                p = p.with_variants(vec![chosen]);
                                pliant_approx::catalog::Catalog::from_profiles(
                                    c.profiles()
                                        .iter()
                                        .map(|x| if x.id == app { p.clone() } else { x.clone() })
                                        .collect(),
                                )
                            }
                        };
                        let policy = if variant.is_some() {
                            PolicyKind::StaticMostApproximate
                        } else {
                            PolicyKind::Precise
                        };
                        run_colocation_with_config(sim_cfg, policy, &opts, &single_variant_catalog)
                    };
                    colocation.push(ColocationRow {
                        service: service.name().to_string(),
                        variant: variant.map_or("precise".to_string(), |v| format!("v{}", v + 1)),
                        tail_latency_vs_qos: outcome.tail_latency_ratio,
                    });
                }
            }
        }

        results.push(AppDesignSpace {
            app: app.name().to_string(),
            selected_variants: exploration.selected_count(),
            points,
            colocation,
        });
    }

    if json {
        println!("{}", serde_json::to_string_pretty(&results).expect("serializable results"));
        return;
    }

    println!("Figure 1 (odd rows): execution time vs. inaccuracy per application\n");
    for r in &results {
        println!("== {} ({} selected variants) ==", r.app, r.selected_variants);
        let rows: Vec<Vec<String>> = r
            .points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.2}", p.inaccuracy_pct),
                    format!("{:.3}", p.relative_time),
                    p.kind.clone(),
                ]
            })
            .collect();
        print_table(&["variant", "inaccuracy(%)", "rel. time", "kind"], &rows);
        println!();
    }

    if !skip_colocation {
        println!("Figure 1 (even rows): tail latency vs. QoS per selected variant\n");
        for r in &results {
            println!("== {} ==", r.app);
            let rows: Vec<Vec<String>> = r
                .colocation
                .iter()
                .map(|c| {
                    vec![
                        c.service.clone(),
                        c.variant.clone(),
                        format!("{:.2}", c.tail_latency_vs_qos),
                    ]
                })
                .collect();
            print_table(&["service", "variant", "tail latency / QoS"], &rows);
            println!();
        }
    }
}
