//! Regenerates Figure 1: the approximation design-space exploration.
//!
//! Odd rows of the paper's figure: for each of the 24 applications, the trade-off between
//! relative execution time and output inaccuracy across examined approximate variants,
//! with the near-pareto variants marked as selected.
//!
//! Even rows: the tail latency (relative to QoS) of each interactive service when
//! statically co-located with the precise version and with each selected variant. Each
//! static pin is expressed as a scenario run against a bridged single-variant catalog
//! (the same [`pliant_explore::bridge`] path the DSE-to-runtime pipeline uses).
//!
//! Usage: `fig1_design_space [--json] [--skip-colocation]`

use pliant_approx::catalog::{AppId, Catalog};
use pliant_approx::kernels::kernel_for;
use pliant_bench::print_table;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Scenario;
use pliant_explore::{bridge, explore_kernel, ExplorationConfig};
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct AppDesignSpace {
    app: String,
    points: Vec<PointRow>,
    selected_variants: usize,
    colocation: Vec<ColocationRow>,
}

#[derive(Serialize)]
struct PointRow {
    label: String,
    inaccuracy_pct: f64,
    relative_time: f64,
    kind: String,
}

#[derive(Serialize)]
struct ColocationRow {
    service: String,
    variant: String,
    tail_latency_vs_qos: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let skip_colocation = args.iter().any(|a| a == "--skip-colocation");
    let catalog = Catalog::default();
    let dse_config = ExplorationConfig::default();

    let mut results: Vec<AppDesignSpace> = Vec::new();
    for app in AppId::all() {
        // Odd rows: kernel-level design-space exploration.
        let kernel = kernel_for(app, 2024);
        let exploration = explore_kernel(kernel.as_ref(), &dse_config);
        let points: Vec<PointRow> = exploration
            .measurements
            .iter()
            .map(|m| PointRow {
                label: m.label.clone(),
                inaccuracy_pct: m.inaccuracy_pct,
                relative_time: m.relative_time,
                kind: format!("{:?}", m.kind),
            })
            .collect();

        // Even rows: static colocation of precise + each catalog variant with each
        // service. Pinning a variant = bridging a single-variant catalog into an engine
        // and running the static most-approximate policy over it.
        let mut colocation = Vec::new();
        if !skip_colocation {
            let profile = catalog.profile(app).expect("catalog covers all apps");
            for service in ServiceId::all() {
                for variant in std::iter::once(None).chain((0..profile.variant_count()).map(Some)) {
                    let (engine, policy) = match variant {
                        None => (
                            Engine::new().with_catalog(catalog.clone()),
                            PolicyKind::Precise,
                        ),
                        Some(v) => {
                            let chosen = profile.variants[v].clone();
                            let single = bridge::catalog_with_variants(&catalog, app, vec![chosen]);
                            (
                                Engine::new().with_catalog(single),
                                PolicyKind::StaticMostApproximate,
                            )
                        }
                    };
                    let scenario = Scenario::builder(service)
                        .app(app)
                        .policy(policy)
                        .instrumented(variant.is_some())
                        .horizon_intervals(25)
                        .seed(7)
                        .build();
                    let outcome = engine.run_scenario(&scenario);
                    colocation.push(ColocationRow {
                        service: service.name().to_string(),
                        variant: variant.map_or("precise".to_string(), |v| format!("v{}", v + 1)),
                        tail_latency_vs_qos: outcome.tail_latency_ratio,
                    });
                }
            }
        }

        results.push(AppDesignSpace {
            app: app.name().to_string(),
            selected_variants: exploration.selected_count(),
            points,
            colocation,
        });
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&results).expect("serializable results")
        );
        return;
    }

    println!("Figure 1 (odd rows): execution time vs. inaccuracy per application\n");
    for r in &results {
        println!(
            "== {} ({} selected variants) ==",
            r.app, r.selected_variants
        );
        let rows: Vec<Vec<String>> = r
            .points
            .iter()
            .map(|p| {
                vec![
                    p.label.clone(),
                    format!("{:.2}", p.inaccuracy_pct),
                    format!("{:.3}", p.relative_time),
                    p.kind.clone(),
                ]
            })
            .collect();
        print_table(&["variant", "inaccuracy(%)", "rel. time", "kind"], &rows);
        println!();
    }

    if !skip_colocation {
        println!("Figure 1 (even rows): tail latency vs. QoS per selected variant\n");
        for r in &results {
            println!("== {} ==", r.app);
            let rows: Vec<Vec<String>> = r
                .colocation
                .iter()
                .map(|c| {
                    vec![
                        c.service.clone(),
                        c.variant.clone(),
                        format!("{:.2}", c.tail_latency_vs_qos),
                    ]
                })
                .collect();
            print_table(&["service", "variant", "tail latency / QoS"], &rows);
            println!();
        }
    }
}
