//! Cluster figure: the paper's headline fleet result — machines needed at a QoS target.
//!
//! A fixed amount of cluster-wide offered load (in node-saturation units) must be served
//! while every node co-locates an approximate batch job. The binary sweeps the fleet
//! size under the Precise baseline and under Pliant with **common random numbers** (the
//! paired fleets see identical workload randomness at every size) and reports, for each
//! policy, the smallest fleet that meets the QoS target — Pliant's approximation-aware
//! co-location absorbs the batch interference at a higher per-node load, so it serves
//! the same traffic with fewer machines.
//!
//! Usage: `fig_cluster [--json] [--seed N] [--total-load X] [--nodes N] [--approx K]
//!                     [--topology <racks>x<nodes-per-rack>] [--rack-power-w W]
//!                     [--trace PATH] [--trace-level off|decisions|full]
//!                     [--checkpoint-at K --checkpoint-dir DIR] [--resume-dir DIR]`
//!
//! `--nodes N` replaces the default fleet-size sweep with the single given size (pair
//! it with a matching `--total-load`); `--approx K` simulates each fleet through the
//! clustered approximation with `K` representatives per node group (`0` or absent =
//! exact simulation of every node); `--topology` lays each fleet out in racked power
//! domains (sizes the rack shape cannot tile stay flat — see
//! [`pliant_bench::TopologySpec`]), `--rack-power-w` adds a per-rack admission budget;
//! `--trace PATH` exports each run's decision-event
//! stream to `PATH` tagged `{nodes}n-{policy}` (`.json` = Chrome trace-event JSON
//! loadable in Perfetto, otherwise JSON Lines readable by `pliant-trace`).
//!
//! `--checkpoint-at K --checkpoint-dir DIR` snapshots every sweep cell at decision
//! interval `K` to `DIR/{nodes}n-{policy}.json` (the run then continues to completion
//! as usual); `--resume-dir DIR` restores each cell from such a snapshot before
//! running the remainder. Resuming an untraced run is byte-identical to never having
//! stopped — the `--json` output of checkpoint-then-resume equals the uninterrupted
//! run's byte for byte, which CI enforces.

use pliant_bench::{
    approximation_from_args, cluster_machines_needed_scenario, export_trace, flag_value,
    format_latency, print_table, topology_spec_from_args, trace_opts, TraceRunSummary,
};
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

/// Fleet sizes swept (the machines-needed search space).
const NODE_COUNTS: [usize; 5] = [3, 4, 5, 6, 7];

#[derive(Serialize)]
struct CurvePoint {
    nodes: usize,
    avg_node_load: f64,
    policy: String,
    fleet_p99_s: f64,
    fleet_tail_latency_ratio: f64,
    fleet_qos_violation_fraction: f64,
    max_total_extra_cores: u32,
    jobs_completed: usize,
    mean_completed_inaccuracy_pct: f64,
    qos_met: bool,
}

#[derive(Serialize)]
struct ClusterFigure {
    service: String,
    total_load_node_units: f64,
    seed: u64,
    curve: Vec<CurvePoint>,
    machines_needed_precise: Option<usize>,
    machines_needed_pliant: Option<usize>,
    /// Per-run observability rollups (empty when the figure ran untraced).
    obs: Vec<TraceRunSummary>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let seed: u64 = flag("--seed").map_or(7, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed expects an integer");
            std::process::exit(2);
        })
    });
    let total_load: f64 = flag("--total-load").map_or(2.6, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --total-load expects a number");
            std::process::exit(2);
        })
    });
    let approximation = approximation_from_args(&args);
    let topology_spec = topology_spec_from_args(&args);
    let node_counts: Vec<usize> = match flag_value(&args, "--nodes") {
        Some(v) => vec![v.parse().unwrap_or_else(|_| {
            eprintln!("error: --nodes expects an integer");
            std::process::exit(2);
        })],
        None => NODE_COUNTS.to_vec(),
    };

    let trace = trace_opts(&args);

    let checkpoint_at: Option<usize> = flag("--checkpoint-at").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --checkpoint-at expects an interval count");
            std::process::exit(2);
        })
    });
    let checkpoint_dir = flag("--checkpoint-dir").cloned();
    if checkpoint_at.is_some() != checkpoint_dir.is_some() {
        eprintln!("error: --checkpoint-at and --checkpoint-dir must be given together");
        std::process::exit(2);
    }
    let resume_dir = flag("--resume-dir").cloned();

    let service = ServiceId::Memcached;
    let engine = Engine::new().parallel();
    let mut curve = Vec::new();
    let mut obs = Vec::new();
    let mut sweeps: [Vec<(usize, ClusterOutcome)>; 2] = [Vec::new(), Vec::new()];
    for &nodes in &node_counts {
        for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
            .into_iter()
            .enumerate()
        {
            let Some(mut s) = cluster_machines_needed_scenario(nodes, total_load, policy, seed)
            else {
                // A fleet this small cannot even be offered the requested load (above
                // 1.5x saturation per node); it trivially fails and is skipped rather
                // than silently served less traffic than the larger fleets.
                eprintln!(
                    "note: skipping {nodes}-machine fleet — {total_load} node-units \
                     exceeds 1.5x saturation per node"
                );
                continue;
            };
            s.approximation = approximation;
            if let Some(spec) = &topology_spec {
                s.topology = spec.config_for(s.nodes);
            }
            if let Err(e) = s.validate() {
                eprintln!("error: topology override does not fit the {nodes}-machine fleet: {e}");
                std::process::exit(2);
            }
            let cell = format!("{nodes}n-{policy}");
            let mut run = ClusterRun::with_obs(&s, &engine, trace.level);
            if let Some(dir) = &resume_dir {
                let path = format!("{dir}/{cell}.json");
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("error: cannot read checkpoint {path}: {e}");
                    std::process::exit(1);
                });
                let checkpoint: ClusterRunCheckpoint =
                    serde_json::from_str(&text).unwrap_or_else(|e| {
                        eprintln!("error: cannot parse checkpoint {path}: {e}");
                        std::process::exit(1);
                    });
                run.restore(&checkpoint).unwrap_or_else(|e| {
                    eprintln!("error: cannot restore checkpoint {path}: {e}");
                    std::process::exit(1);
                });
            }
            if let (Some(at), Some(dir)) = (checkpoint_at, &checkpoint_dir) {
                while run.intervals() < at && run.step() {}
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    eprintln!("error: cannot create checkpoint dir {dir}: {e}");
                    std::process::exit(1);
                });
                let path = format!("{dir}/{cell}.json");
                let text =
                    serde_json::to_string(&run.checkpoint()).expect("checkpoints are serializable");
                std::fs::write(&path, text).unwrap_or_else(|e| {
                    eprintln!("error: cannot write checkpoint {path}: {e}");
                    std::process::exit(1);
                });
                eprintln!("checkpoint: {path} at interval {}", run.intervals());
            }
            let (outcome, log) = run.finish();
            if trace.enabled() {
                obs.push(export_trace(&trace, &format!("{nodes}n-{policy}"), &log));
            }
            curve.push(CurvePoint {
                nodes,
                avg_node_load: s.avg_node_load,
                policy: policy.to_string(),
                fleet_p99_s: outcome.fleet_p99_s,
                fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
                fleet_qos_violation_fraction: outcome.fleet_qos_violation_fraction,
                max_total_extra_cores: outcome.max_total_extra_cores,
                jobs_completed: outcome.jobs_completed(),
                mean_completed_inaccuracy_pct: outcome.mean_completed_inaccuracy_pct(),
                qos_met: outcome.qos_met(),
            });
            sweeps[pi].push((nodes, outcome));
        }
    }
    let machines_precise = machines_needed(&sweeps[0]);
    let machines_pliant = machines_needed(&sweeps[1]);

    let figure = ClusterFigure {
        service: service.name().to_string(),
        total_load_node_units: total_load,
        seed,
        curve,
        machines_needed_precise: machines_precise,
        machines_needed_pliant: machines_pliant,
        obs,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&figure).expect("serializable")
        );
        return;
    }

    println!(
        "Machines needed at the QoS target: {} serving {:.1} node-units of load\n\
         (each node co-locates one batch job; CRN seed {})\n",
        service.name(),
        total_load,
        seed
    );
    let rows: Vec<Vec<String>> = figure
        .curve
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                format!("{:.0}%", p.avg_node_load * 100.0),
                p.policy.clone(),
                format_latency(service, p.fleet_p99_s),
                format!("{:.2}", p.fleet_tail_latency_ratio),
                format!("{:.1}%", p.fleet_qos_violation_fraction * 100.0),
                p.max_total_extra_cores.to_string(),
                format!("{:.1}", p.mean_completed_inaccuracy_pct),
                if p.qos_met { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "machines",
            "load/node",
            "policy",
            "fleet p99",
            "p99/QoS",
            "violations",
            "max cores reclaimed",
            "inacc(%)",
            "QoS met",
        ],
        &rows,
    );

    println!();
    let describe = |m: Option<usize>| match m {
        Some(n) => n.to_string(),
        None => format!(">{}", node_counts[node_counts.len() - 1]),
    };
    println!(
        "machines needed: precise = {}, pliant = {}",
        describe(machines_precise),
        describe(machines_pliant)
    );
    if let (Some(p), Some(q)) = (machines_precise, machines_pliant) {
        if q < p {
            println!(
                "pliant serves the same load with {} fewer machine(s) ({:.0}% of the precise fleet)",
                p - q,
                100.0 * q as f64 / p as f64
            );
        } else {
            println!("no machines saved at this operating point");
        }
    }
    for t in &figure.obs {
        if let Some(file) = &t.trace_file {
            println!(
                "trace ({}): {} events -> {file}",
                t.run, t.summary.events_recorded
            );
        }
    }
}
