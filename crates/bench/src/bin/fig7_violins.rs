//! Regenerates Figure 7: distribution summaries (violin plots) of tail latency, execution
//! time, and inaccuracy when each interactive service is co-located with one, two, or
//! three approximate applications.
//!
//! The paper runs every 2- and 3-way combination of the 24 applications; by default this
//! harness samples a deterministic subset per mix size to keep the run short. Pass
//! `--combos N` to change the subset size or `--full` to run every combination. Each
//! (service, mix-size) stratum is one application-set sweep with independent per-cell
//! seeds, executed in parallel.
//!
//! Usage: `fig7_violins [--json] [--combos N] [--full]`

use pliant_approx::catalog::AppId;
use pliant_bench::print_table;
use pliant_core::engine::Engine;
use pliant_core::scenario::Scenario;
use pliant_core::suite::{SeedMode, Suite};
use pliant_telemetry::violin::ViolinSummary;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct ViolinRow {
    service: String,
    apps_per_node: usize,
    metric: String,
    summary: ViolinSummary,
}

fn combinations(apps: &[AppId], k: usize, limit: Option<usize>) -> Vec<Vec<AppId>> {
    // Deterministic enumeration of k-combinations, optionally truncated with a stride so
    // the subset spans the whole application list rather than only its prefix.
    let mut all = Vec::new();
    let n = apps.len();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        all.push(idx.iter().map(|&i| apps[i]).collect::<Vec<_>>());
        // Advance the combination indices.
        let mut i = k;
        loop {
            if i == 0 {
                return match limit {
                    Some(l) if all.len() > l => {
                        let stride = all.len().div_ceil(l);
                        all.into_iter().step_by(stride).collect()
                    }
                    _ => all,
                };
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let full = args.iter().any(|a| a == "--full");
    let combos = args
        .iter()
        .position(|a| a == "--combos")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(20);
    let limit = if full { None } else { Some(combos) };

    let apps = AppId::all();
    let engine = Engine::new().parallel();

    let mut rows: Vec<ViolinRow> = Vec::new();
    for service in ServiceId::all() {
        for k in 1..=3usize {
            let mix_sets = combinations(&apps, k, if k == 1 { None } else { limit });
            let suite = Suite::new(
                Scenario::builder(service)
                    .app(apps[0])
                    .horizon_intervals(50)
                    .seed(1000)
                    .build(),
            )
            .named(format!("fig7/{}way", k))
            .seed_mode(SeedMode::Independent)
            .for_each_app_set(mix_sets);

            let mut latency_ratios = Vec::new();
            let mut exec_times = Vec::new();
            let mut inaccuracies = Vec::new();
            for cell in engine.run_collect(&suite) {
                latency_ratios.push(cell.outcome.tail_latency_ratio);
                for app in &cell.outcome.app_outcomes {
                    exec_times.push(app.relative_execution_time);
                    inaccuracies.push(app.inaccuracy_pct);
                }
            }
            rows.push(ViolinRow {
                service: service.name().to_string(),
                apps_per_node: k,
                metric: "tail_latency_vs_qos".to_string(),
                summary: ViolinSummary::from_samples("tail latency / QoS", &latency_ratios, 16),
            });
            rows.push(ViolinRow {
                service: service.name().to_string(),
                apps_per_node: k,
                metric: "relative_execution_time".to_string(),
                summary: ViolinSummary::from_samples("relative execution time", &exec_times, 16),
            });
            rows.push(ViolinRow {
                service: service.name().to_string(),
                apps_per_node: k,
                metric: "inaccuracy_pct".to_string(),
                summary: ViolinSummary::from_samples("inaccuracy (%)", &inaccuracies, 16),
            });
        }
    }

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
        return;
    }

    println!("Figure 7: violin summaries across 1-, 2-, and 3-application colocations\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.service.clone(),
                r.apps_per_node.to_string(),
                r.metric.clone(),
                format!("{:.3}", r.summary.min),
                format!("{:.3}", r.summary.q1),
                format!("{:.3}", r.summary.median),
                format!("{:.3}", r.summary.q3),
                format!("{:.3}", r.summary.max),
            ]
        })
        .collect();
    print_table(
        &[
            "service",
            "apps/node",
            "metric",
            "min",
            "q1",
            "median",
            "q3",
            "max",
        ],
        &table,
    );
}
