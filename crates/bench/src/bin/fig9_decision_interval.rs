//! Regenerates Figure 9: sensitivity to the decision-interval length, with memcached as
//! the interactive service and six representative approximate applications.
//!
//! One suite — application × decision interval — with a fixed 60 s wall-clock horizon, so
//! coarse-interval cells simulate the same amount of service time as fine-interval cells.
//!
//! Usage: `fig9_decision_interval [--json]`

use pliant_bench::{interval_sensitivity_apps, print_table};
use pliant_core::engine::Engine;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct IntervalRow {
    app: String,
    decision_interval_s: f64,
    tail_latency_vs_qos: f64,
    qos_violation_fraction: f64,
    relative_execution_time: f64,
    inaccuracy_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let intervals = [0.2, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];

    let suite = Suite::new(
        Scenario::builder(ServiceId::Memcached)
            .app(interval_sensitivity_apps()[0])
            .horizon_seconds(60.0)
            .build(),
    )
    .named("fig9")
    .for_each_app(interval_sensitivity_apps())
    .sweep_decision_intervals_s(intervals);

    let results = Engine::new().parallel().run_collect(&suite);

    let rows: Vec<IntervalRow> = results
        .iter()
        .map(|cell| {
            let a = &cell.outcome.app_outcomes[0];
            IntervalRow {
                app: cell.scenario.apps[0].name().to_string(),
                decision_interval_s: cell.scenario.decision_interval_s,
                tail_latency_vs_qos: cell.outcome.tail_latency_ratio,
                qos_violation_fraction: cell.outcome.qos_violation_fraction,
                relative_execution_time: a.relative_execution_time,
                inaccuracy_pct: a.inaccuracy_pct,
            }
        })
        .collect();

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable")
        );
        return;
    }

    println!("Figure 9: decision-interval sensitivity (memcached, equal 60s wall clock)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!("{:.1}s", r.decision_interval_s),
                format!("{:.2}", r.tail_latency_vs_qos),
                format!("{:.0}%", r.qos_violation_fraction * 100.0),
                format!("{:.2}", r.relative_execution_time),
                format!("{:.1}", r.inaccuracy_pct),
            ]
        })
        .collect();
    print_table(
        &[
            "app",
            "interval",
            "p99/QoS",
            "violations",
            "rel. exec",
            "inacc(%)",
        ],
        &table,
    );
}
