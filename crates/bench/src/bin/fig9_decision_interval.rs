//! Regenerates Figure 9: sensitivity to the decision-interval length, with memcached as
//! the interactive service and six representative approximate applications.
//!
//! Usage: `fig9_decision_interval [--json]`

use pliant_bench::{interval_sensitivity_apps, print_table};
use pliant_core::experiment::{interval_sweep, ExperimentOptions};
use pliant_workloads::service::ServiceId;
use serde::Serialize;

#[derive(Serialize)]
struct IntervalRow {
    app: String,
    decision_interval_s: f64,
    tail_latency_vs_qos: f64,
    qos_violation_fraction: f64,
    relative_execution_time: f64,
    inaccuracy_pct: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let intervals = [0.2, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    let options = ExperimentOptions {
        max_intervals: 60,
        ..ExperimentOptions::default()
    };

    let mut rows: Vec<IntervalRow> = Vec::new();
    for app in interval_sensitivity_apps() {
        for (dt, outcome) in interval_sweep(ServiceId::Memcached, app, &intervals, &options) {
            let a = &outcome.app_outcomes[0];
            rows.push(IntervalRow {
                app: app.name().to_string(),
                decision_interval_s: dt,
                tail_latency_vs_qos: outcome.tail_latency_ratio,
                qos_violation_fraction: outcome.qos_violation_fraction,
                relative_execution_time: a.relative_execution_time,
                inaccuracy_pct: a.inaccuracy_pct,
            });
        }
    }

    if json {
        println!("{}", serde_json::to_string_pretty(&rows).expect("serializable"));
        return;
    }

    println!("Figure 9: decision-interval sensitivity (memcached)\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                format!("{:.1}s", r.decision_interval_s),
                format!("{:.2}", r.tail_latency_vs_qos),
                format!("{:.0}%", r.qos_violation_fraction * 100.0),
                format!("{:.2}", r.relative_execution_time),
                format!("{:.1}", r.inaccuracy_pct),
            ]
        })
        .collect();
    print_table(
        &["app", "interval", "p99/QoS", "violations", "rel. exec", "inacc(%)"],
        &table,
    );
}
