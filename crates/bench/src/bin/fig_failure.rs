//! Failure figure: machines needed and QoS under a fault trace — availability as the
//! other face of the machines-needed headline.
//!
//! The machines-needed fleet of `fig_cluster` is re-run under a fixed failure trace
//! (one mid-run node crash whose batch job is re-queued onto the survivors, then a
//! degraded-frequency straggler; see `pliant_bench::cluster_failure_trace`). Both
//! policies see the identical fault schedule under common random numbers, so the
//! comparison isolates what the co-location policy contributes to fault tolerance:
//! Pliant's reclaimed headroom absorbs the shed traffic of a dead node at fleet sizes
//! where the Precise baseline violates QoS.
//!
//! Usage: `fig_failure [--json] [--seed N] [--total-load X] [--nodes N]
//!                     [--topology <racks>x<nodes-per-rack>] [--rack-power-w W]
//!                     [--trace PATH] [--trace-level off|decisions|full]`
//!
//! `--topology` lays each fleet out in racked power domains (sizes the rack shape
//! cannot tile stay flat — see [`pliant_bench::TopologySpec`]) and `--rack-power-w`
//! adds a per-rack admission budget; both default to the flat, rack-free fleet.
//!
//! Runs always record decision events (tracing never perturbs the simulation), so the
//! `--json` output's `obs` block carries the fault-event rollup — `NodeFailed`,
//! `NodeRecovered`, `NodeDegraded`, `JobRequeued` — even without `--trace`; `--trace
//! PATH` additionally exports each run's event stream tagged `{nodes}n-{policy}`.

use pliant_bench::{
    cluster_failure_scenario, cluster_failure_trace, export_trace, flag_value, format_latency,
    print_table, topology_spec_from_args, trace_opts, TraceRunSummary,
};
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_telemetry::obs::ObsLevel;
use pliant_workloads::service::ServiceId;
use serde::Serialize;

/// Fleet sizes swept (the machines-needed-under-failure search space).
const NODE_COUNTS: [usize; 4] = [4, 5, 6, 7];

#[derive(Serialize)]
struct FailurePoint {
    nodes: usize,
    avg_node_load: f64,
    policy: String,
    fleet_p99_s: f64,
    fleet_tail_latency_ratio: f64,
    fleet_qos_violation_fraction: f64,
    /// Intervals during which at least one logical node violated QoS.
    violating_intervals: usize,
    availability: f64,
    crashes: u64,
    degradations: u64,
    jobs_requeued: u64,
    jobs_completed: usize,
    qos_met: bool,
}

#[derive(Serialize)]
struct FailureFigure {
    service: String,
    total_load_node_units: f64,
    seed: u64,
    fault_profile: FaultProfile,
    curve: Vec<FailurePoint>,
    machines_needed_precise: Option<usize>,
    machines_needed_pliant: Option<usize>,
    /// Per-run observability rollups (every run records decision events).
    obs: Vec<TraceRunSummary>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = pliant_bench::json_requested(&args);
    let seed: u64 = flag_value(&args, "--seed").map_or(7, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --seed expects an integer");
            std::process::exit(2);
        })
    });
    let total_load: f64 = flag_value(&args, "--total-load").map_or(2.6, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --total-load expects a number");
            std::process::exit(2);
        })
    });
    let node_counts: Vec<usize> = match flag_value(&args, "--nodes") {
        Some(v) => vec![v.parse().unwrap_or_else(|_| {
            eprintln!("error: --nodes expects an integer");
            std::process::exit(2);
        })],
        None => NODE_COUNTS.to_vec(),
    };
    let topology_spec = topology_spec_from_args(&args);
    let trace = trace_opts(&args);
    // The figure's JSON contract includes the fault-event rollup, so runs record
    // decision events even without `--trace` (tracing observes, never perturbs).
    let level = if trace.level == ObsLevel::Off {
        ObsLevel::Decisions
    } else {
        trace.level
    };

    let service = ServiceId::Memcached;
    let engine = Engine::new().parallel();
    let mut curve = Vec::new();
    let mut obs = Vec::new();
    let mut sweeps: [Vec<(usize, ClusterOutcome)>; 2] = [Vec::new(), Vec::new()];
    for &nodes in &node_counts {
        for (pi, policy) in [PolicyKind::Precise, PolicyKind::Pliant]
            .into_iter()
            .enumerate()
        {
            let Some(mut scenario) = cluster_failure_scenario(nodes, total_load, policy, seed)
            else {
                eprintln!(
                    "note: skipping {nodes}-machine fleet — {total_load} node-units \
                     exceeds 1.5x saturation per node"
                );
                continue;
            };
            if let Some(spec) = &topology_spec {
                scenario.topology = spec.config_for(scenario.nodes);
            }
            if let Err(e) = scenario.validate() {
                eprintln!("error: topology override does not fit the {nodes}-machine fleet: {e}");
                std::process::exit(2);
            }
            let (outcome, log) = engine.run_cluster_traced(&scenario, level);
            obs.push(if trace.enabled() {
                export_trace(&trace, &format!("{nodes}n-{policy}"), &log)
            } else {
                TraceRunSummary {
                    run: format!("{nodes}n-{policy}"),
                    trace_file: None,
                    summary: log.summary(),
                }
            });
            let faults = outcome
                .faults
                .unwrap_or_else(|| panic!("failure scenarios always carry fault stats"));
            let violating_intervals = outcome.trace.get("violating_nodes").map_or(0, |series| {
                series.points().iter().filter(|p| p.value > 0.0).count()
            });
            curve.push(FailurePoint {
                nodes,
                avg_node_load: scenario.avg_node_load,
                policy: policy.to_string(),
                fleet_p99_s: outcome.fleet_p99_s,
                fleet_tail_latency_ratio: outcome.fleet_tail_latency_ratio,
                fleet_qos_violation_fraction: outcome.fleet_qos_violation_fraction,
                violating_intervals,
                availability: faults.availability,
                crashes: faults.crashes,
                degradations: faults.degradations,
                jobs_requeued: faults.jobs_requeued,
                jobs_completed: outcome.jobs_completed(),
                qos_met: outcome.qos_met(),
            });
            sweeps[pi].push((nodes, outcome));
        }
    }
    let machines_precise = machines_needed(&sweeps[0]);
    let machines_pliant = machines_needed(&sweeps[1]);

    let figure = FailureFigure {
        service: service.name().to_string(),
        total_load_node_units: total_load,
        seed,
        fault_profile: cluster_failure_trace(),
        curve,
        machines_needed_precise: machines_precise,
        machines_needed_pliant: machines_pliant,
        obs,
    };

    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&figure).expect("serializable")
        );
        return;
    }

    println!(
        "Machines needed under failure: {} serving {:.1} node-units through one node \
         crash and one straggler\n(each node co-locates one batch job; CRN seed {})\n",
        service.name(),
        total_load,
        seed
    );
    let rows: Vec<Vec<String>> = figure
        .curve
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.policy.clone(),
                format_latency(service, p.fleet_p99_s),
                format!("{:.2}", p.fleet_tail_latency_ratio),
                format!("{:.1}%", p.fleet_qos_violation_fraction * 100.0),
                p.violating_intervals.to_string(),
                format!("{:.3}", p.availability),
                p.jobs_requeued.to_string(),
                p.jobs_completed.to_string(),
                if p.qos_met { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "machines",
            "policy",
            "fleet p99",
            "p99/QoS",
            "violations",
            "viol. intervals",
            "availability",
            "requeued",
            "completed",
            "QoS met",
        ],
        &rows,
    );

    println!();
    let describe = |m: Option<usize>| match m {
        Some(n) => n.to_string(),
        None => format!(">{}", node_counts[node_counts.len() - 1]),
    };
    println!(
        "machines needed under failure: precise = {}, pliant = {}",
        describe(machines_precise),
        describe(machines_pliant)
    );
    if let (Some(p), Some(q)) = (machines_precise, machines_pliant) {
        if q < p {
            println!(
                "pliant's reclaimed headroom absorbs the node loss with {} fewer machine(s)",
                p - q
            );
        } else {
            println!("no machines saved under this failure trace");
        }
    }
    for t in &figure.obs {
        if let Some(file) = &t.trace_file {
            println!(
                "trace ({}): {} events -> {file}",
                t.run, t.summary.events_recorded
            );
        }
    }
}
