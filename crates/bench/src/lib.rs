//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper's evaluation:
//! it runs the corresponding experiments through `pliant_core::experiment` and prints the
//! same rows/series the paper plots (plus a machine-readable JSON dump when `--json` is
//! passed). The Criterion benches under `benches/` measure the throughput of the key
//! components (design-space exploration, controller decisions, co-location simulation,
//! kernel execution).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pliant_approx::catalog::AppId;
use pliant_core::experiment::ColocationOutcome;
use pliant_workloads::service::ServiceId;

/// The four approximate applications Fig. 4 and Fig. 6 focus on, chosen in the paper for
/// their diverse characteristics (variant counts of 4, 2, 8, and 5 respectively).
pub fn dynamic_behavior_apps() -> [AppId; 4] {
    [AppId::Canneal, AppId::Raytrace, AppId::Bayesian, AppId::Snp]
}

/// The six applications the decision-interval sensitivity study (Fig. 9) uses.
pub fn interval_sensitivity_apps() -> [AppId; 6] {
    [
        AppId::Fluidanimate,
        AppId::Canneal,
        AppId::Raytrace,
        AppId::WaterNsquared,
        AppId::WaterSpatial,
        AppId::Streamcluster,
    ]
}

/// Returns true when `--json` was passed to a harness binary.
pub fn json_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Formats a tail latency in the service's display unit with its unit suffix.
pub fn format_latency(service: ServiceId, latency_s: f64) -> String {
    format!("{:.1}{}", service.to_display_unit(latency_s), service.display_unit())
}

/// One row of a Fig. 5-style comparison table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ComparisonRow {
    /// Interactive service.
    pub service: String,
    /// Approximate application.
    pub app: String,
    /// Precise-baseline tail latency divided by the QoS target.
    pub precise_tail_ratio: f64,
    /// Pliant tail latency divided by the QoS target.
    pub pliant_tail_ratio: f64,
    /// Pliant execution time of the approximate application relative to nominal.
    pub pliant_relative_exec_time: f64,
    /// Pliant output-quality loss in percent.
    pub pliant_inaccuracy_pct: f64,
    /// Instrumentation overhead fraction of the application.
    pub instrumentation_overhead: f64,
    /// Maximum number of cores reclaimed by the service under Pliant.
    pub max_cores_reclaimed: u32,
}

impl ComparisonRow {
    /// Builds a row from a (precise, pliant) outcome pair for one application.
    pub fn from_outcomes(app: AppId, precise: &ColocationOutcome, pliant: &ColocationOutcome) -> Self {
        let pliant_app = &pliant.app_outcomes[0];
        Self {
            service: precise.service.name().to_string(),
            app: app.name().to_string(),
            precise_tail_ratio: precise.tail_latency_ratio,
            pliant_tail_ratio: pliant.tail_latency_ratio,
            pliant_relative_exec_time: pliant_app.relative_execution_time,
            pliant_inaccuracy_pct: pliant_app.inaccuracy_pct,
            instrumentation_overhead: pliant_app.instrumentation_overhead,
            max_cores_reclaimed: pliant.max_extra_service_cores,
        }
    }
}

/// Prints a header + rows as an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_core::experiment::{run_colocation, ExperimentOptions};
    use pliant_core::policy::PolicyKind;

    #[test]
    fn selected_app_lists_are_stable() {
        assert_eq!(dynamic_behavior_apps().len(), 4);
        assert_eq!(interval_sensitivity_apps().len(), 6);
        assert_eq!(dynamic_behavior_apps()[0], AppId::Canneal);
    }

    #[test]
    fn comparison_row_reflects_outcomes() {
        let options = ExperimentOptions {
            max_intervals: 20,
            ..ExperimentOptions::default()
        };
        let precise = run_colocation(ServiceId::Nginx, &[AppId::Snp], PolicyKind::Precise, &options);
        let pliant = run_colocation(ServiceId::Nginx, &[AppId::Snp], PolicyKind::Pliant, &options);
        let row = ComparisonRow::from_outcomes(AppId::Snp, &precise, &pliant);
        assert_eq!(row.service, "nginx");
        assert_eq!(row.app, "snp");
        assert!(row.precise_tail_ratio > 0.0);
        assert!(row.pliant_inaccuracy_pct >= 0.0);
    }

    #[test]
    fn latency_formatting_uses_display_units() {
        assert_eq!(format_latency(ServiceId::Memcached, 0.000_2), "200.0us");
        assert_eq!(format_latency(ServiceId::Nginx, 0.01), "10.0ms");
    }

    #[test]
    fn json_flag_detection() {
        assert!(json_requested(&["--json".to_string()]));
        assert!(!json_requested(&["--full".to_string()]));
    }
}
