//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the paper's evaluation:
//! it describes the corresponding experiment grid as a `pliant_core` scenario
//! [`Suite`](pliant_core::suite::Suite), executes it on the
//! [`Engine`](pliant_core::engine::Engine) (in parallel), and prints the same rows/series
//! the paper plots (plus a machine-readable JSON dump when `--json` is passed). The
//! Criterion benches under `benches/` measure the throughput of the key components
//! (design-space exploration, controller decisions, co-location simulation, kernel
//! execution, and the suite engine itself).
//!
//! This crate also provides the harness-side [`ResultSink`] implementations:
//! [`JsonLinesSink`] (one JSON object per cell, streamable) and [`SummaryTableSink`]
//! (an aligned text table printed when the suite completes).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::io::Write;

use pliant_approx::catalog::AppId;
use pliant_core::engine::{CellOutcome, ResultSink};
use pliant_core::experiment::ColocationOutcome;
use pliant_core::scenario::Scenario;
use pliant_workloads::service::ServiceId;

/// The four approximate applications Fig. 4 and Fig. 6 focus on, chosen in the paper for
/// their diverse characteristics (variant counts of 4, 2, 8, and 5 respectively).
pub fn dynamic_behavior_apps() -> [AppId; 4] {
    [AppId::Canneal, AppId::Raytrace, AppId::Bayesian, AppId::Snp]
}

/// The six applications the decision-interval sensitivity study (Fig. 9) uses.
pub fn interval_sensitivity_apps() -> [AppId; 6] {
    [
        AppId::Fluidanimate,
        AppId::Canneal,
        AppId::Raytrace,
        AppId::WaterNsquared,
        AppId::WaterSpatial,
        AppId::Streamcluster,
    ]
}

/// The fleet scenario of the machines-needed study (`fig_cluster`), shared with the
/// integration test that pins its headline result: `nodes` memcached machines serving
/// `total_load` node-saturation units, each co-locating one long-running batch job
/// (bayesian / semphy / clustalw — kernels whose precise execution clearly violates QoS
/// at ~0.65 load per node while their approximate variants absorb the interference),
/// balanced round-robin so the Precise/Pliant comparison is purely paired under common
/// random numbers. Returns `None` when the fleet is too small to even describe the
/// offered load (above the profile bound of 1.5x saturation per node) — such a fleet
/// trivially cannot meet QoS, and capping the traffic instead would silently compare
/// fleets serving different totals.
pub fn cluster_machines_needed_scenario(
    nodes: usize,
    total_load: f64,
    policy: pliant_core::policy::PolicyKind,
    seed: u64,
) -> Option<pliant_cluster::ClusterScenario> {
    let avg_node_load = total_load / nodes as f64;
    if avg_node_load > pliant_workloads::profile::MAX_LOAD_FRACTION {
        return None;
    }
    let mix = [AppId::Bayesian, AppId::Semphy, AppId::ClustalW];
    Some(
        pliant_cluster::ClusterScenario::builder(ServiceId::Memcached)
            .nodes(nodes)
            .jobs((0..nodes).map(|i| mix[i % mix.len()]))
            .avg_node_load(avg_node_load)
            .policy(policy)
            .balancer(pliant_cluster::BalancerKind::RoundRobin)
            .horizon_seconds(90.0)
            .warmup_intervals(8)
            .seed(seed)
            .build(),
    )
}

/// The fixed failure trace of the availability study (`fig_failure`), shared with the
/// integration test that pins its headline result: one node crash mid-run (node 1 goes
/// down at interval 30 for 20 intervals, its batch job re-queued onto the survivors)
/// followed by a degraded-frequency straggler (node 2 at 60% speed from interval 60
/// for 15 intervals). Both faults target nodes present in every fleet size the study
/// sweeps, so the Precise/Pliant comparison stays paired under common random numbers
/// *and* a common fault trace.
pub fn cluster_failure_trace() -> pliant_cluster::FaultProfile {
    pliant_cluster::FaultProfile {
        scheduled: vec![
            pliant_cluster::ScheduledFault {
                node: 1,
                at_interval: 30,
                duration_intervals: 20,
                kind: pliant_cluster::FaultKind::Crash,
            },
            pliant_cluster::ScheduledFault {
                node: 2,
                at_interval: 60,
                duration_intervals: 15,
                kind: pliant_cluster::FaultKind::Degrade { factor: 0.6 },
            },
        ],
        ..pliant_cluster::FaultProfile::new()
    }
}

/// The fleet scenario of the availability study (`fig_failure`): the machines-needed
/// fleet of [`cluster_machines_needed_scenario`] with [`cluster_failure_trace`]
/// injected. Same `None` contract as the base scenario when the fleet cannot carry the
/// offered load.
pub fn cluster_failure_scenario(
    nodes: usize,
    total_load: f64,
    policy: pliant_core::policy::PolicyKind,
    seed: u64,
) -> Option<pliant_cluster::ClusterScenario> {
    let mut scenario = cluster_machines_needed_scenario(nodes, total_load, policy, seed)?;
    scenario.fault_profile = Some(cluster_failure_trace());
    Some(scenario)
}

/// The fleet scenario of the energy study (`fig_energy`), shared with the integration
/// test that pins its headline result: a 6-machine memcached fleet under one day/night
/// load cycle — a day plateau at exactly the fig_cluster operating point (2.6
/// node-units), an evening decline, and a night valley at 1.26 node-units — serving a
/// fixed batch of 12 jobs, with the energy-aware autoscaler sizing the active set.
/// Round-robin balancing and slack-aware job placement keep the Precise/Pliant
/// comparison purely paired under common random numbers.
///
/// The autoscaler's drain boundary (0.66 per node) sits at the load Pliant serves
/// within QoS in `fig_cluster` but Precise does not: the Pliant fleet consolidates to
/// 4 machines at 0.65 load each by day and 2 at night, while the Precise fleet's drain
/// into the same operating point triggers QoS pressure, burns the learned capacity
/// ceiling, and settles on 5 by day and 3 at night. Both fleets serve the identical
/// interactive load and complete the identical batch within QoS — the Pliant fleet
/// simply does it with more machines parked at the suspend draw, which is the
/// machines-needed headline expressed in joules.
pub fn cluster_energy_scenario(
    policy: pliant_core::policy::PolicyKind,
    seed: u64,
) -> pliant_cluster::ClusterScenario {
    cluster_energy_scenario_at_scale(6, policy, seed)
}

/// The energy study generalized to an arbitrary fleet size: the same day/night cycle
/// *per provisioned node* as [`cluster_energy_scenario`] (so the total traffic scales
/// linearly with the fleet), two batch jobs per node from the same three-kernel mix,
/// and the same autoscaler thresholds with the active-set floor scaled to a third of
/// the fleet (which is the historical floor of 2 at the 6-node figure).
/// [`cluster_energy_scenario`] delegates here at `nodes == 6`, so the historical
/// figure is exactly the 6-node slice of this family.
pub fn cluster_energy_scenario_at_scale(
    nodes: usize,
    policy: pliant_core::policy::PolicyKind,
    seed: u64,
) -> pliant_cluster::ClusterScenario {
    use pliant_workloads::profile::LoadProfile;
    let mix = [AppId::Bayesian, AppId::Semphy, AppId::ClustalW];
    // A fixed batch of two jobs per node (half initial + half queued): both fleets
    // complete the whole batch well inside the horizon, so the energy comparison
    // covers identical interactive load *and* identical batch work. Pliant's
    // approximated jobs finish earlier, so its drained nodes reach the park state
    // sooner.
    pliant_cluster::ClusterScenario::builder(ServiceId::Memcached)
        .nodes(nodes)
        .jobs((0..2 * nodes).map(|i| mix[i % mix.len()]))
        .policy(policy)
        .balancer(pliant_cluster::BalancerKind::RoundRobin)
        .scheduler(pliant_cluster::SchedulerKind::QosSlackAware)
        // One day/night cycle, expressed per provisioned node (×nodes for node-units,
        // quoted below for the historical 6-node figure): a
        // day plateau at exactly the fig_cluster operating point (2.6 node-units),
        // an evening decline, a night valley at 1.26 node-units, and the next
        // morning's rise. During the day the autoscaler rediscovers the
        // machines-needed headline online — Pliant consolidates to 4 machines at
        // 0.65 load each while Precise burns that ceiling and settles on 5 — and at
        // night Pliant serves the valley on 2 machines where Precise needs 3.
        .load_profile(LoadProfile::Trace {
            points: vec![
                (0.0, 2.6 / 6.0),
                (120.0, 2.6 / 6.0),
                (180.0, 1.26 / 6.0),
                (330.0, 1.26 / 6.0),
                (360.0, 1.8 / 6.0),
            ],
        })
        .autoscaler(pliant_cluster::AutoscalerConfig {
            min_active: (nodes / 3).max(2),
            scale_out_load: 0.74,
            scale_out_violation_fraction: 0.6,
            scale_out_sustain_intervals: 2,
            scale_in_max_load: 0.66,
            scale_in_max_p99_fraction: 0.95,
            scale_in_sustain_intervals: 4,
            cooldown_intervals: 5,
            consolidate: false,
        })
        .horizon_seconds(360.0)
        .warmup_intervals(8)
        .seed(seed)
        .build()
}

/// The fleet scenario of the topology figure (`fig_topology`): the 8-node energy
/// fleet of [`cluster_energy_scenario_at_scale`] laid out as four 2-node racks, with
/// one whole-rack power-domain outage striking rack 0 mid-day (both of its nodes
/// crash at interval 40 for 25 intervals, their batch jobs re-queued onto the
/// survivors) and the autoscaler's active-consolidation knob exposed. With
/// `consolidate` off a draining node waits for its batch jobs to complete before
/// parking (the historical behaviour); with it on, in-flight jobs are live-migrated
/// onto active nodes and the drained machine parks the same interval — the
/// figure's headline is how much earlier that first park lands, at equal QoS.
pub fn cluster_topology_scenario(
    policy: pliant_core::policy::PolicyKind,
    consolidate: bool,
    seed: u64,
) -> pliant_cluster::ClusterScenario {
    let mut scenario = cluster_energy_scenario_at_scale(8, policy, seed);
    scenario.topology = pliant_cluster::TopologyConfig::Racks {
        racks: 4,
        nodes_per_rack: 2,
        rack_power_w: None,
    };
    if let Some(config) = &mut scenario.autoscaler {
        config.consolidate = consolidate;
    }
    scenario.fault_profile = Some(pliant_cluster::FaultProfile {
        rack_outages: vec![pliant_cluster::RackOutage {
            rack: 0,
            at_interval: 40,
            duration_intervals: 25,
        }],
        ..pliant_cluster::FaultProfile::new()
    });
    scenario
}

/// The rack shape parsed from the shared `--topology <racks>x<nodes-per-rack>` /
/// `--rack-power-w <watts>` flags of the cluster figure binaries; see
/// [`topology_spec_from_args`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologySpec {
    /// Racks in the grid as written on the command line.
    pub racks: usize,
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Shared per-rack power budget in watts, when `--rack-power-w` was given.
    pub rack_power_w: Option<f64>,
}

impl TopologySpec {
    /// Resolves the spec against a concrete fleet size. The written grid is used
    /// verbatim when it multiplies out to `nodes`; when it does not but the fleet
    /// divides evenly into racks of `nodes_per_rack`, the rack *shape* is kept and
    /// the rack count scales with the fleet (so one `--topology` flag follows a
    /// machines-needed sweep across fleet sizes). A fleet that cannot be cut into
    /// whole racks falls back to the flat topology.
    pub fn config_for(&self, nodes: usize) -> pliant_cluster::TopologyConfig {
        if self.racks * self.nodes_per_rack == nodes {
            pliant_cluster::TopologyConfig::Racks {
                racks: self.racks,
                nodes_per_rack: self.nodes_per_rack,
                rack_power_w: self.rack_power_w,
            }
        } else if self.nodes_per_rack > 0 && nodes.is_multiple_of(self.nodes_per_rack) {
            pliant_cluster::TopologyConfig::Racks {
                racks: nodes / self.nodes_per_rack,
                nodes_per_rack: self.nodes_per_rack,
                rack_power_w: self.rack_power_w,
            }
        } else {
            pliant_cluster::TopologyConfig::Flat
        }
    }
}

/// Parses the shared `--topology <racks>x<nodes-per-rack>` (plus `--rack-power-w
/// <watts>`) flags of the cluster figure binaries. Absent means the flat
/// (historical) topology — `None`. Exits with status 2 on a malformed grid, a
/// non-positive dimension or wattage, or `--rack-power-w` without `--topology`.
pub fn topology_spec_from_args(args: &[String]) -> Option<TopologySpec> {
    let Some(spec) = flag_value(args, "--topology") else {
        if flag_value(args, "--rack-power-w").is_some() {
            eprintln!("error: --rack-power-w requires --topology");
            std::process::exit(2);
        }
        return None;
    };
    let parsed = spec
        .split_once('x')
        .and_then(|(r, n)| Some((r.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
    let Some((racks, nodes_per_rack)) = parsed else {
        eprintln!("error: --topology expects <racks>x<nodes-per-rack>, e.g. 4x2");
        std::process::exit(2);
    };
    if racks == 0 || nodes_per_rack == 0 {
        eprintln!("error: --topology dimensions must be positive");
        std::process::exit(2);
    }
    let rack_power_w = flag_value(args, "--rack-power-w").map(|v| {
        let watts: f64 = v.parse().unwrap_or_else(|_| {
            eprintln!("error: --rack-power-w expects a wattage");
            std::process::exit(2);
        });
        if !watts.is_finite() || watts <= 0.0 {
            eprintln!("error: --rack-power-w must be positive");
            std::process::exit(2);
        }
        watts
    });
    Some(TopologySpec {
        racks,
        nodes_per_rack,
        rack_power_w,
    })
}

/// Returns true when `--json` was passed to a harness binary.
pub fn json_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--json")
}

/// Trace-export options parsed from the shared `--trace <path>` / `--trace-level
/// <off|decisions|full>` flags of the fleet figure binaries. Without `--trace` the run
/// is untraced (`ObsLevel::Off`, no file); with `--trace` the level defaults to
/// `decisions`. The path's extension picks the sink format (`.json` = Chrome
/// trace-event JSON loadable in Perfetto, anything else = JSON Lines).
#[derive(Debug, Clone)]
pub struct TraceOpts {
    /// Base output path (`None` = tracing off).
    pub path: Option<String>,
    /// Recording level for the run.
    pub level: pliant_telemetry::obs::ObsLevel,
}

impl TraceOpts {
    /// Whether the run should record events.
    pub fn enabled(&self) -> bool {
        self.path.is_some() && self.level != pliant_telemetry::obs::ObsLevel::Off
    }
}

/// Parses the shared `--trace` / `--trace-level` flags. Exits with status 2 on an
/// unknown level name.
pub fn trace_opts(args: &[String]) -> TraceOpts {
    let path = flag_value(args, "--trace").cloned();
    let level = match flag_value(args, "--trace-level") {
        Some(v) => pliant_telemetry::obs::ObsLevel::parse(v).unwrap_or_else(|| {
            eprintln!("error: --trace-level expects off, decisions, or full");
            std::process::exit(2);
        }),
        None if path.is_some() => pliant_telemetry::obs::ObsLevel::Decisions,
        None => pliant_telemetry::obs::ObsLevel::Off,
    };
    TraceOpts { path, level }
}

/// Writes one run's event log to the trace `base` path, tagged so a multi-run figure
/// emits one file per run: `traces/fig.json` + tag `pliant` → `traces/fig-pliant.json`
/// (the tag is inserted before the extension; an empty tag writes `base` itself).
/// Returns the path written. The sink format follows the final path's extension
/// (see [`TraceOpts`]).
pub fn write_trace_log(
    base: &str,
    tag: &str,
    log: &pliant_telemetry::obs::EventLog,
) -> std::io::Result<String> {
    let path = if tag.is_empty() {
        base.to_string()
    } else {
        match base.rfind('.') {
            // A dot inside the last path segment separates the extension.
            Some(dot) if !base[dot..].contains('/') => {
                format!("{}-{}{}", &base[..dot], tag, &base[dot..])
            }
            _ => format!("{base}-{tag}"),
        }
    };
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    pliant_telemetry::obs::SinkFormat::for_path(&path).write(log, &mut file)?;
    file.flush()?;
    Ok(path)
}

/// Returns the value following `name` in a harness binary's argument list, if any.
pub fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
}

/// Parses the shared `--approx K` flag of the cluster figure binaries into the fleet
/// approximation knob: absent or `0` means exact simulation (every logical node is
/// stepped — the byte-identical default), `K >= 1` means the clustered approximation
/// with `K` representatives simulated per node group. Exits with status 2 on a
/// non-integer value.
pub fn approximation_from_args(args: &[String]) -> pliant_cluster::FleetApproximation {
    let k: usize = flag_value(args, "--approx").map_or(0, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: --approx expects a non-negative integer");
            std::process::exit(2);
        })
    });
    if k == 0 {
        pliant_cluster::FleetApproximation::Exact
    } else {
        pliant_cluster::FleetApproximation::Clustered {
            representatives_per_group: k,
        }
    }
}

/// One traced run's export record, attached to figure `--json` outputs as the `obs`
/// summary block (empty list when the figure ran untraced).
#[derive(Debug, Clone, serde::Serialize)]
pub struct TraceRunSummary {
    /// Which run of the figure the trace covers (e.g. `pliant`, `5n-precise`).
    pub run: String,
    /// File the event stream was written to (`None` when no `--trace` path was given).
    pub trace_file: Option<String>,
    /// The run's event rollup.
    pub summary: pliant_telemetry::obs::ObsSummary,
}

/// Exports one traced run: writes the event log to the `--trace` path (tagged with
/// `run`) when one was given and returns the JSON-attachable record. Exits with
/// status 1 when the trace file cannot be written.
pub fn export_trace(
    opts: &TraceOpts,
    run: &str,
    log: &pliant_telemetry::obs::EventLog,
) -> TraceRunSummary {
    let trace_file = opts.path.as_ref().map(|base| {
        write_trace_log(base, run, log).unwrap_or_else(|e| {
            eprintln!("error: cannot write trace file: {e}");
            std::process::exit(1);
        })
    });
    TraceRunSummary {
        run: run.to_string(),
        trace_file,
        summary: log.summary(),
    }
}

/// Formats a tail latency in the service's display unit with its unit suffix.
pub fn format_latency(service: ServiceId, latency_s: f64) -> String {
    format!(
        "{:.1}{}",
        service.to_display_unit(latency_s),
        service.display_unit()
    )
}

/// One row of a Fig. 5-style comparison table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ComparisonRow {
    /// Interactive service.
    pub service: String,
    /// Approximate application.
    pub app: String,
    /// Precise-baseline tail latency divided by the QoS target.
    pub precise_tail_ratio: f64,
    /// Pliant tail latency divided by the QoS target.
    pub pliant_tail_ratio: f64,
    /// Pliant execution time of the approximate application relative to nominal.
    pub pliant_relative_exec_time: f64,
    /// Pliant output-quality loss in percent.
    pub pliant_inaccuracy_pct: f64,
    /// Instrumentation overhead fraction of the application.
    pub instrumentation_overhead: f64,
    /// Maximum number of cores reclaimed by the service under Pliant.
    pub max_cores_reclaimed: u32,
}

impl ComparisonRow {
    /// Builds a row from a (precise, pliant) outcome pair for one application.
    pub fn from_outcomes(
        app: AppId,
        precise: &ColocationOutcome,
        pliant: &ColocationOutcome,
    ) -> Self {
        let pliant_app = &pliant.app_outcomes[0];
        Self {
            service: precise.service.name().to_string(),
            app: app.name().to_string(),
            precise_tail_ratio: precise.tail_latency_ratio,
            pliant_tail_ratio: pliant.tail_latency_ratio,
            pliant_relative_exec_time: pliant_app.relative_execution_time,
            pliant_inaccuracy_pct: pliant_app.inaccuracy_pct,
            instrumentation_overhead: pliant_app.instrumentation_overhead,
            max_cores_reclaimed: pliant.max_extra_service_cores,
        }
    }
}

/// Prints a header + rows as an aligned text table.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// A [`ResultSink`] writing one JSON object per cell (JSON-lines), streamable while the
/// suite is still running.
///
/// Each line has the shape `{"index": …, "scenario": {…}, "outcome": {…}}`, so an
/// archived suite run can be re-aggregated without re-simulating.
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer (e.g. a locked stdout or a file).
    pub fn new(out: W) -> Self {
        JsonLinesSink { out }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> ResultSink for JsonLinesSink<W> {
    fn on_result(&mut self, index: usize, scenario: &Scenario, outcome: &ColocationOutcome) {
        let cell = CellOutcome {
            index,
            scenario: scenario.clone(),
            outcome: outcome.clone(),
        };
        let line = serde_json::to_string(&cell).expect("cell outcomes are serializable");
        writeln!(self.out, "{line}").expect("writing a result line must succeed");
    }

    fn on_complete(&mut self, _total: usize) {
        self.out
            .flush()
            .expect("flushing the result stream must succeed");
    }
}

/// A [`ResultSink`] that accumulates one summary row per cell and prints an aligned table
/// when the suite completes.
#[derive(Debug, Default)]
pub struct SummaryTableSink {
    rows: Vec<Vec<String>>,
}

impl SummaryTableSink {
    /// Creates an empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The header matching this sink's row shape.
    pub fn header() -> [&'static str; 7] {
        [
            "cell",
            "policy",
            "p99/QoS",
            "violations",
            "max cores",
            "mean inacc(%)",
            "intervals",
        ]
    }

    /// Rows collected so far (one per delivered cell).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl ResultSink for SummaryTableSink {
    fn on_result(&mut self, _index: usize, scenario: &Scenario, outcome: &ColocationOutcome) {
        self.rows.push(vec![
            scenario.describe(),
            scenario.policy.to_string(),
            format!("{:.2}", outcome.tail_latency_ratio),
            format!("{:.0}%", outcome.qos_violation_fraction * 100.0),
            outcome.max_extra_service_cores.to_string(),
            format!("{:.1}", outcome.mean_inaccuracy_pct()),
            outcome.intervals.to_string(),
        ]);
    }

    fn on_complete(&mut self, _total: usize) {
        let header = Self::header();
        print_table(&header, &self.rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pliant_core::engine::Engine;
    use pliant_core::policy::PolicyKind;
    use pliant_core::suite::Suite;

    fn scenario(service: ServiceId, app: AppId, policy: PolicyKind) -> Scenario {
        Scenario::builder(service)
            .app(app)
            .policy(policy)
            .horizon_intervals(20)
            .build()
    }

    #[test]
    fn selected_app_lists_are_stable() {
        assert_eq!(dynamic_behavior_apps().len(), 4);
        assert_eq!(interval_sensitivity_apps().len(), 6);
        assert_eq!(dynamic_behavior_apps()[0], AppId::Canneal);
    }

    #[test]
    fn comparison_row_reflects_outcomes() {
        let engine = Engine::new();
        let precise =
            engine.run_scenario(&scenario(ServiceId::Nginx, AppId::Snp, PolicyKind::Precise));
        let pliant =
            engine.run_scenario(&scenario(ServiceId::Nginx, AppId::Snp, PolicyKind::Pliant));
        let row = ComparisonRow::from_outcomes(AppId::Snp, &precise, &pliant);
        assert_eq!(row.service, "nginx");
        assert_eq!(row.app, "snp");
        assert!(row.precise_tail_ratio > 0.0);
        assert!(row.pliant_inaccuracy_pct >= 0.0);
    }

    #[test]
    fn latency_formatting_uses_display_units() {
        assert_eq!(format_latency(ServiceId::Memcached, 0.000_2), "200.0us");
        assert_eq!(format_latency(ServiceId::Nginx, 0.01), "10.0ms");
    }

    #[test]
    fn json_flag_detection() {
        assert!(json_requested(&["--json".to_string()]));
        assert!(!json_requested(&["--full".to_string()]));
    }

    #[test]
    fn json_lines_sink_emits_one_parseable_line_per_cell() {
        let suite = Suite::new(scenario(
            ServiceId::Memcached,
            AppId::Canneal,
            PolicyKind::Pliant,
        ))
        .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant]);
        let mut sink = JsonLinesSink::new(Vec::new());
        Engine::new().run_suite(&suite, &mut sink);
        let text = String::from_utf8(sink.into_inner()).expect("utf-8 output");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let cell: CellOutcome = serde_json::from_str(line).expect("parseable cell");
            assert_eq!(cell.index, i);
            assert_eq!(
                cell.outcome.intervals,
                cell.outcome.trace.get("p99_latency_s").unwrap().len()
            );
        }
    }

    #[test]
    fn summary_sink_collects_one_row_per_cell() {
        let suite = Suite::new(scenario(ServiceId::Nginx, AppId::Snp, PolicyKind::Pliant))
            .sweep_loads([0.5, 0.9]);
        let mut sink = SummaryTableSink::new();
        Engine::new().run_suite(&suite, &mut sink);
        assert_eq!(sink.rows().len(), 2);
        assert_eq!(sink.rows()[0].len(), SummaryTableSink::header().len());
    }
}
