//! Criterion bench: approximate-kernel execution, precise vs most-approximate variant.
//!
//! This is the micro-benchmark counterpart of Fig. 1's odd rows: the speedup of the most
//! aggressive admissible variant over precise execution, measured in wall-clock time on
//! the Rust kernels themselves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pliant_approx::catalog::AppId;
use pliant_approx::kernel::ApproxConfig;
use pliant_approx::kernels::kernel_for;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels_precise_vs_approx");
    group.sample_size(10);
    for app in [
        AppId::KMeans,
        AppId::Canneal,
        AppId::WaterNsquared,
        AppId::Fasta,
        AppId::Plsa,
    ] {
        let kernel = kernel_for(app, 11);
        group.bench_with_input(
            BenchmarkId::new("precise", app.name()),
            &ApproxConfig::precise(),
            |b, cfg| b.iter(|| kernel.run(cfg)),
        );
        // The last candidate configuration is typically among the most aggressive knobs.
        if let Some(most) = kernel.candidate_configs().into_iter().last() {
            group.bench_with_input(BenchmarkId::new("approx", app.name()), &most, |b, cfg| {
                b.iter(|| kernel.run(cfg))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
