//! Criterion bench: fleet-simulation throughput, serial vs node-parallel.
//!
//! The cluster engine advances independent nodes on worker threads within each decision
//! interval; this bench tracks how much of that parallelism survives the per-interval
//! coordination barrier (balancer + scheduler) as fleets grow. It is the hot path of
//! every machines-needed sweep, so its trajectory matters for future scaling PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pliant_approx::catalog::AppId;
use pliant_cluster::prelude::*;
use pliant_core::engine::Engine;
use pliant_workloads::service::ServiceId;

fn bench_scenario(nodes: usize) -> ClusterScenario {
    let mix = [AppId::Bayesian, AppId::Semphy, AppId::ClustalW, AppId::Snp];
    ClusterScenario::builder(ServiceId::Memcached)
        .nodes(nodes)
        .jobs((0..nodes * 2).map(|i| mix[i % mix.len()]))
        .avg_node_load(0.6)
        .horizon_intervals(25)
        .warmup_intervals(4)
        .seed(7)
        .build()
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_engine");
    group.sample_size(10);
    for nodes in [4usize, 12] {
        let scenario = bench_scenario(nodes);
        let serial = Engine::new();
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{nodes}nodes")),
            &scenario,
            |b, scenario| {
                b.iter(|| serial.run_cluster(scenario));
            },
        );
        let parallel = Engine::new().parallel();
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{nodes}nodes")),
            &scenario,
            |b, scenario| {
                b.iter(|| parallel.run_cluster(scenario));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
