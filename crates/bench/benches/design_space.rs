//! Criterion bench: design-space exploration throughput (backs Fig. 1 regeneration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pliant_approx::catalog::AppId;
use pliant_approx::kernels::kernel_for;
use pliant_explore::{explore_kernel, ExplorationConfig};

fn bench_design_space(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_space_exploration");
    group.sample_size(10);
    for app in [AppId::KMeans, AppId::Canneal, AppId::Raytrace, AppId::Hmmer] {
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &app, |b, &app| {
            let kernel = kernel_for(app, 7);
            let config = ExplorationConfig::default();
            b.iter(|| explore_kernel(kernel.as_ref(), &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_design_space);
criterion_main!(benches);
