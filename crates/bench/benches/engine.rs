//! Criterion bench: suite-engine throughput (scenarios/second), serial vs parallel.
//!
//! This is the hot path every figure binary and future scaling PR (fleets, caching, new
//! workloads) sits on, so its trajectory matters: the parallel numbers should approach
//! `serial × cores` for compute-bound suites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pliant_approx::catalog::AppId;
use pliant_core::engine::Engine;
use pliant_core::policy::PolicyKind;
use pliant_core::scenario::Scenario;
use pliant_core::suite::Suite;
use pliant_workloads::service::ServiceId;

fn bench_suite(n_apps: usize) -> Suite {
    let apps: Vec<AppId> = AppId::all().into_iter().take(n_apps).collect();
    Suite::new(
        Scenario::builder(ServiceId::Memcached)
            .app(apps[0])
            .horizon_intervals(20)
            .build(),
    )
    .named("bench")
    .for_each_app(apps)
    .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite_engine");
    group.sample_size(10);
    for n_apps in [4usize, 12] {
        let suite = bench_suite(n_apps);
        let cells = suite.len();
        let serial = Engine::new();
        group.bench_with_input(
            BenchmarkId::new("serial", format!("{cells}cells")),
            &suite,
            |b, suite| {
                b.iter(|| serial.run_collect(suite));
            },
        );
        let parallel = Engine::new().parallel();
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{cells}cells")),
            &suite,
            |b, suite| {
                b.iter(|| parallel.run_collect(suite));
            },
        );
    }
    group.finish();

    c.bench_function("suite_expansion_1000_cells", |b| {
        let suite = Suite::new(
            Scenario::builder(ServiceId::Nginx)
                .app(AppId::Canneal)
                .build(),
        )
        .for_each_app(AppId::all().into_iter().take(10))
        .sweep_loads((0..10).map(|i| 0.4 + 0.06 * i as f64))
        .sweep_seeds(0..10);
        b.iter(|| suite.scenarios().len());
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
