//! Criterion bench: controller decision latency (the runtime's per-interval overhead) and
//! monitor ingestion cost.

use criterion::{criterion_group, criterion_main, Criterion};
use pliant_core::controller::{ControllerConfig, PliantController};
use pliant_core::monitor::{MonitorConfig, MonitorReport, PerformanceMonitor};
use pliant_core::multi::MultiAppController;
use pliant_telemetry::rng::{sample_lognormal, seeded_rng};

fn violation_report() -> MonitorReport {
    MonitorReport {
        p99_s: 0.02,
        mean_s: 0.005,
        smoothed_p99_s: 0.02,
        sampled: 500,
        qos_violated: true,
        slack_fraction: -1.0,
        no_signal: false,
    }
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("single_app_controller_decision", |b| {
        b.iter(|| {
            // Enough reclaimable cores that all 100 decisions exercise the full
            // escalation path rather than the nothing-left-to-take early return.
            let mut ctrl = PliantController::new(ControllerConfig::default(), 8, 128);
            for _ in 0..100 {
                let _ = ctrl.decide(0, &violation_report());
            }
        });
    });

    c.bench_function("multi_app_controller_decision", |b| {
        b.iter(|| {
            let mut ctrl =
                MultiAppController::new(ControllerConfig::default(), &[4, 8, 5], &[3, 3, 2], 0);
            for _ in 0..100 {
                let _ = ctrl.decide(&violation_report());
            }
        });
    });

    c.bench_function("monitor_interval_ingestion_10k_samples", |b| {
        let mut rng = seeded_rng(5);
        let samples: Vec<f64> = (0..10_000)
            .map(|_| sample_lognormal(&mut rng, 0.002, 0.3))
            .collect();
        b.iter(|| {
            let mut monitor = PerformanceMonitor::new(MonitorConfig::for_qos(0.01), 1);
            monitor.observe_interval(&samples)
        });
    });
}

criterion_group!(benches, bench_controller);
criterion_main!(benches);
