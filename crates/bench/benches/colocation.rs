//! Criterion bench: co-location experiments (the engine behind Figs. 4–10) and the
//! discrete-event queue simulator it is validated against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pliant_approx::catalog::AppId;
use pliant_core::experiment::{run_colocation, ExperimentOptions};
use pliant_core::policy::PolicyKind;
use pliant_sim::events::{simulate, EventSimConfig};
use pliant_workloads::service::{ServiceId, ServiceProfile};

fn bench_colocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("colocation_experiment");
    group.sample_size(10);
    let options = ExperimentOptions {
        max_intervals: 40,
        ..ExperimentOptions::default()
    };
    for (service, app) in [
        (ServiceId::Memcached, AppId::Canneal),
        (ServiceId::Nginx, AppId::Bayesian),
        (ServiceId::MongoDb, AppId::Snp),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}+{}", service.name(), app.name())),
            &(service, app),
            |b, &(service, app)| {
                b.iter(|| run_colocation(service, &[app], PolicyKind::Pliant, &options));
            },
        );
    }
    group.finish();

    let mut des = c.benchmark_group("discrete_event_queue");
    des.sample_size(10);
    let svc = ServiceProfile::paper_default(ServiceId::MongoDb);
    des.bench_function("mongodb_1s_75pct_load", |b| {
        let cfg = EventSimConfig {
            qps: svc.qps_at_load(0.75),
            workers: 8,
            capacity_slowdown: 1.2,
            duration_s: 1.0,
            seed: 3,
        };
        b.iter(|| simulate(&svc, &cfg));
    });
    des.finish();
}

criterion_group!(benches, bench_colocation);
criterion_main!(benches);
