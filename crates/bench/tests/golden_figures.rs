//! Golden-output pins for the cluster figure binaries.
//!
//! The population/instance refactor promises that exact simulation (the default
//! `FleetApproximation::Exact`) is *byte-identical* to the pre-population simulator.
//! These tests enforce the promise end to end: each figure binary is run with its
//! default flags and its `--json` output is compared byte-for-byte against the golden
//! file captured before the refactor landed.
//!
//! If a change intentionally alters a figure (new operating point, new field in the
//! figure struct), regenerate the golden in the same commit:
//!
//! ```text
//! cargo run --release -p pliant-bench --bin fig_cluster -- --json \
//!     > crates/bench/tests/golden/fig_cluster.json
//! cargo run --release -p pliant-bench --bin fig_energy -- --json \
//!     > crates/bench/tests/golden/fig_energy.json
//! ```
//!
//! An *unintentional* diff here means the exact simulation path changed behavior —
//! treat it as a correctness regression, not as a golden to refresh.

use std::process::Command;

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read golden {path}: {e}"))
}

fn run_json(bin: &str, extra_args: &[&str]) -> String {
    let output = Command::new(bin)
        .arg("--json")
        .args(extra_args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("figure JSON is UTF-8")
}

#[test]
fn fig_cluster_default_output_is_byte_identical_to_the_golden() {
    let fresh = run_json(env!("CARGO_BIN_EXE_fig_cluster"), &[]);
    assert_eq!(
        fresh,
        golden("fig_cluster.json"),
        "fig_cluster --json drifted from the pre-population golden; exact simulation \
         must stay byte-identical (see the module docs before refreshing)"
    );
}

#[test]
fn fig_energy_default_output_is_byte_identical_to_the_golden() {
    let fresh = run_json(env!("CARGO_BIN_EXE_fig_energy"), &[]);
    assert_eq!(
        fresh,
        golden("fig_energy.json"),
        "fig_energy --json drifted from the pre-population golden; exact simulation \
         must stay byte-identical (see the module docs before refreshing)"
    );
}

#[test]
fn explicit_exact_approx_flag_matches_the_default_path() {
    // `--approx 0` must route through the same exact path as no flag at all.
    let fresh = run_json(env!("CARGO_BIN_EXE_fig_energy"), &["--approx", "0"]);
    assert_eq!(fresh, golden("fig_energy.json"));
}

fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, inner)| inner))
        .unwrap_or_else(|| panic!("missing field {key}"))
}

#[test]
fn hyperscale_figure_runs_clustered_at_scale() {
    // Smoke: the default 10k-node hyperscale figure must produce valid JSON with the
    // clustered approximation engaged (a handful of instances, not 10k).
    let fresh = run_json(env!("CARGO_BIN_EXE_fig_hyperscale"), &[]);
    let v: serde_json::Value = serde_json::from_str(&fresh).expect("valid JSON");
    assert_eq!(field(&v, "fleet_nodes").as_u64(), Some(10_000));
    assert_eq!(field(&v, "approx_representatives").as_u64(), Some(4));
    let energy_rows = field(&v, "energy").as_array().expect("energy rows");
    let instances = field(&energy_rows[0], "simulated_instances")
        .as_u64()
        .expect("instance count");
    assert!(
        (1..100).contains(&instances),
        "clustered 10k-node run must simulate a handful of instances, got {instances}"
    );
}
