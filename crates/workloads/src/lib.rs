//! Interactive, latency-critical service models and workload generators for the Pliant
//! reproduction.
//!
//! The paper co-schedules three open-source interactive services with approximate batch
//! applications:
//!
//! * **NGINX** — front-end web server serving 1 KB static pages; QoS target 10 ms p99.
//! * **memcached** — in-memory key-value store; QoS target 200 µs p99 (the most
//!   interference-sensitive of the three).
//! * **MongoDB** — persistent NoSQL database with a 178 GB dataset; QoS target 100 ms p99
//!   (I/O-bound and the least interference-sensitive).
//!
//! Those servers are not run here; instead each is modelled by a calibrated
//! [`service::ServiceProfile`] capturing its QoS target, saturation throughput at a fair
//! core allocation, request service-time distribution, and sensitivity to contention in
//! shared resources. The [`generator::OpenLoopGenerator`] produces the open-loop Poisson
//! arrival streams the paper's client machines generate, and a
//! [`profile::LoadProfile`] shapes the offered load over simulated time (constant
//! operating points, steps, diurnal sinusoids, flash crowds, or replayed traces).
//!
//! # Example
//!
//! ```
//! use pliant_workloads::service::{ServiceId, ServiceProfile};
//!
//! let memcached = ServiceProfile::paper_default(ServiceId::Memcached);
//! assert!(memcached.qos_target_s < 0.001); // 200 us
//! let high_load_qps = memcached.qps_at_load(0.75);
//! assert!(high_load_qps > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generator;
pub mod profile;
pub mod service;

pub use generator::OpenLoopGenerator;
pub use profile::{LoadPhase, LoadProfile};
pub use service::{ServiceId, ServiceProfile};
