//! Calibrated models of the three interactive services.

use serde::{Deserialize, Serialize};

/// Which interactive service is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceId {
    /// NGINX front-end web server.
    Nginx,
    /// memcached in-memory key-value store.
    Memcached,
    /// MongoDB persistent NoSQL database.
    MongoDb,
}

impl ServiceId {
    /// All three services, in the order the paper lists them.
    pub fn all() -> [ServiceId; 3] {
        [ServiceId::Nginx, ServiceId::Memcached, ServiceId::MongoDb]
    }

    /// Lower-case name used in figures and output rows.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceId::Nginx => "nginx",
            ServiceId::Memcached => "memcached",
            ServiceId::MongoDb => "mongodb",
        }
    }

    /// The latency unit the paper uses when reporting this service (for display only; all
    /// internal computation is in seconds).
    pub fn display_unit(&self) -> &'static str {
        match self {
            ServiceId::Nginx => "ms",
            ServiceId::Memcached => "us",
            ServiceId::MongoDb => "ms",
        }
    }

    /// Converts a latency in seconds into the service's display unit.
    pub fn to_display_unit(&self, latency_s: f64) -> f64 {
        match self {
            ServiceId::Nginx | ServiceId::MongoDb => latency_s * 1e3,
            ServiceId::Memcached => latency_s * 1e6,
        }
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Calibrated model of one interactive service.
///
/// The profile captures what the Pliant runtime and the co-location simulator need to
/// know: the QoS target, the latency/throughput behaviour in isolation, and how sensitive
/// the service is to contention in each shared resource. The calibration follows the
/// paper's experimental-methodology section (§5) and the load-sweep observations of Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceProfile {
    /// Which service this profile models.
    pub id: ServiceId,
    /// Tail-latency (99th percentile) QoS target, in seconds.
    pub qos_target_s: f64,
    /// Median request service time at low load without interference, in seconds.
    pub base_service_time_s: f64,
    /// Lognormal shape parameter of the service-time distribution.
    pub service_time_sigma: f64,
    /// Throughput (queries per second) at the knee of the latency/throughput curve when
    /// running alone on its fair-share core allocation.
    pub saturation_qps: f64,
    /// Fair-share core allocation the saturation figure was measured at.
    pub fair_share_cores: u32,
    /// Sensitivity in `[0, 1]` of the service's compute path to core/SMT contention.
    pub cpu_sensitivity: f64,
    /// Sensitivity in `[0, 1]` to last-level-cache contention.
    pub llc_sensitivity: f64,
    /// Sensitivity in `[0, 1]` to memory-bandwidth contention.
    pub membw_sensitivity: f64,
    /// Fraction of each request spent in I/O (insensitive to CPU/cache contention).
    pub io_fraction: f64,
    /// The service's own LLC working set, in MiB.
    pub llc_footprint_mb: f64,
    /// The service's own memory-bandwidth demand at saturation, in GiB/s.
    pub membw_gbps: f64,
}

impl ServiceProfile {
    /// The paper-calibrated profile of a service.
    pub fn paper_default(id: ServiceId) -> Self {
        match id {
            // NGINX: 10 ms QoS; QoS met in precise colocation only up to ~340 K QPS (48% of
            // load), so saturation is ~700 K QPS; sensitive to compute and LLC contention.
            ServiceId::Nginx => Self {
                id,
                qos_target_s: 0.010,
                base_service_time_s: 0.0020,
                service_time_sigma: 0.29,
                saturation_qps: 700_000.0,
                fair_share_cores: 8,
                cpu_sensitivity: 0.80,
                llc_sensitivity: 0.70,
                membw_sensitivity: 0.50,
                io_fraction: 0.05,
                llc_footprint_mb: 9.0,
                membw_gbps: 7.0,
            },
            // memcached: 200 µs QoS; the strictest QoS and the highest sensitivity to
            // interference of the three services.
            ServiceId::Memcached => Self {
                id,
                qos_target_s: 0.000_200,
                base_service_time_s: 0.000_055,
                service_time_sigma: 0.16,
                saturation_qps: 600_000.0,
                fair_share_cores: 8,
                cpu_sensitivity: 0.92,
                llc_sensitivity: 0.90,
                membw_sensitivity: 0.72,
                io_fraction: 0.0,
                llc_footprint_mb: 13.0,
                membw_gbps: 9.0,
            },
            // MongoDB: 100 ms QoS; I/O-bound (178 GB on-disk dataset), so it is the least
            // sensitive to CPU/LLC contention and tolerates precise co-runners until high
            // load (~77% per Fig. 8).
            ServiceId::MongoDb => Self {
                id,
                qos_target_s: 0.100,
                base_service_time_s: 0.028,
                service_time_sigma: 0.12,
                saturation_qps: 400.0,
                fair_share_cores: 8,
                cpu_sensitivity: 0.50,
                llc_sensitivity: 0.60,
                membw_sensitivity: 0.45,
                io_fraction: 0.55,
                llc_footprint_mb: 6.0,
                membw_gbps: 3.0,
            },
        }
    }

    /// All three paper-calibrated profiles.
    pub fn all_paper_defaults() -> Vec<ServiceProfile> {
        ServiceId::all()
            .into_iter()
            .map(Self::paper_default)
            .collect()
    }

    /// Per-core service rate (requests per second per core) implied by the saturation
    /// throughput and the fair-share core count.
    pub fn per_core_rate(&self) -> f64 {
        self.saturation_qps / self.fair_share_cores as f64
    }

    /// The highest offered load the generator will actually run at, as a multiple of
    /// saturation throughput: [`Self::qps_at_load`] clamps here, and the co-location
    /// simulator records offered loads after the same clamp so archived statistics never
    /// claim an operating point the simulation did not run at.
    pub const MAX_OFFERED_LOAD: f64 = 1.2;

    /// Queries-per-second corresponding to a fraction of the saturation load.
    ///
    /// The paper runs interactive services at 75–80% of saturation unless a load sweep is
    /// being performed. Fractions are clamped to `[0, MAX_OFFERED_LOAD]`.
    pub fn qps_at_load(&self, load_fraction: f64) -> f64 {
        self.saturation_qps * load_fraction.clamp(0.0, Self::MAX_OFFERED_LOAD)
    }

    /// The high-load operating point used throughout the paper's evaluation (~77% of
    /// saturation, the middle of the quoted 75–80% band).
    pub fn high_load_qps(&self) -> f64 {
        self.qps_at_load(0.77)
    }

    /// The QoS target expressed in the service's display unit (ms for NGINX and MongoDB,
    /// µs for memcached).
    pub fn qos_target_display(&self) -> f64 {
        self.id.to_display_unit(self.qos_target_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_qos_targets() {
        assert_eq!(
            ServiceProfile::paper_default(ServiceId::Nginx).qos_target_display(),
            10.0
        );
        assert_eq!(
            ServiceProfile::paper_default(ServiceId::Memcached).qos_target_display(),
            200.0
        );
        assert_eq!(
            ServiceProfile::paper_default(ServiceId::MongoDb).qos_target_display(),
            100.0
        );
    }

    #[test]
    fn memcached_is_most_sensitive() {
        let profiles = ServiceProfile::all_paper_defaults();
        let memcached = &profiles[1];
        for other in [&profiles[0], &profiles[2]] {
            assert!(memcached.llc_sensitivity >= other.llc_sensitivity);
            assert!(memcached.cpu_sensitivity >= other.cpu_sensitivity);
        }
    }

    #[test]
    fn mongodb_is_io_bound_and_least_sensitive() {
        let mongo = ServiceProfile::paper_default(ServiceId::MongoDb);
        let nginx = ServiceProfile::paper_default(ServiceId::Nginx);
        assert!(mongo.io_fraction > 0.5);
        assert!(mongo.llc_sensitivity < nginx.llc_sensitivity);
        assert!(mongo.cpu_sensitivity < nginx.cpu_sensitivity);
    }

    #[test]
    fn base_latency_well_below_qos() {
        for p in ServiceProfile::all_paper_defaults() {
            assert!(
                p.base_service_time_s < p.qos_target_s / 2.0,
                "{}: base latency must leave headroom below QoS",
                p.id
            );
        }
    }

    #[test]
    fn load_helpers() {
        let p = ServiceProfile::paper_default(ServiceId::Nginx);
        assert_eq!(p.qps_at_load(0.5), 350_000.0);
        assert!(p.high_load_qps() > p.qps_at_load(0.7));
        assert!(p.high_load_qps() < p.qps_at_load(0.8));
        assert!(p.per_core_rate() > 0.0);
        // Load is clamped to a sane range.
        assert_eq!(p.qps_at_load(5.0), p.qps_at_load(1.2));
        assert_eq!(p.qps_at_load(-1.0), 0.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(ServiceId::Nginx.display_unit(), "ms");
        assert_eq!(ServiceId::Memcached.display_unit(), "us");
        assert_eq!(ServiceId::Memcached.to_display_unit(0.000_2), 200.0);
        assert_eq!(ServiceId::MongoDb.to_display_unit(0.1), 100.0);
        assert_eq!(ServiceId::Nginx.to_string(), "nginx");
        assert_eq!(ServiceId::all().len(), 3);
    }
}
