//! Time-varying offered-load profiles (diurnal patterns, flash crowds, traces).
//!
//! Pliant's headline claim is that approximation absorbs *load fluctuations*: the paper
//! evaluates the runtime under diurnal patterns and load transients, not just at one
//! fixed operating point. A [`LoadProfile`] describes the offered load of the interactive
//! service as a function of simulated time, expressed as a fraction of the service's
//! saturation throughput. The co-location simulator samples the profile at the start of
//! every decision interval, so the open-loop generator's arrival *rate* follows the
//! profile while its RNG *stream* stays fully deterministic — replaying the same profile
//! from the same seed reproduces the identical arrival sequence.
//!
//! Profiles are plain serde-round-trippable data, so scenarios that sweep them can be
//! archived next to their results and replayed bit-for-bit, exactly like every other
//! scenario axis.
//!
//! # Example
//!
//! ```
//! use pliant_workloads::profile::{LoadPhase, LoadProfile};
//!
//! let flash = LoadProfile::FlashCrowd {
//!     base: 0.4,
//!     peak: 1.0,
//!     start_s: 30.0,
//!     ramp_s: 5.0,
//!     hold_s: 15.0,
//!     decay_s: 10.0,
//! };
//! assert_eq!(flash.load_at(0.0), 0.4);
//! assert_eq!(flash.load_at(40.0), 1.0);
//! assert_eq!(flash.phase_at(40.0), LoadPhase::Peak);
//! assert_eq!(flash.phase_at(90.0), LoadPhase::Steady);
//! ```

use serde::{Deserialize, Serialize};

/// Highest load fraction a profile may request (matches the scenario-level bound on
/// constant loads; the saturation model itself clamps at 1.2× saturation).
pub const MAX_LOAD_FRACTION: f64 = 1.5;

/// Coarse classification of what a [`LoadProfile`] is doing at a point in time.
///
/// The engine aggregates QoS statistics per phase so figures can show *recovery*
/// behaviour: how often QoS is violated while load is ramping versus once the runtime has
/// settled into the new operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadPhase {
    /// Baseline operation: load at or near the profile's low operating point.
    #[serde(rename = "steady")]
    Steady,
    /// Load is rising.
    #[serde(rename = "ramp-up")]
    RampUp,
    /// Elevated operation: load flat at or near the profile's high operating point.
    #[serde(rename = "peak")]
    Peak,
    /// Load is falling.
    #[serde(rename = "ramp-down")]
    RampDown,
}

impl LoadPhase {
    /// Every phase, in reporting order.
    pub fn all() -> [LoadPhase; 4] {
        [
            LoadPhase::Steady,
            LoadPhase::RampUp,
            LoadPhase::Peak,
            LoadPhase::RampDown,
        ]
    }

    /// Short lower-case name used in result rows.
    pub fn name(&self) -> &'static str {
        match self {
            LoadPhase::Steady => "steady",
            LoadPhase::RampUp => "ramp-up",
            LoadPhase::Peak => "peak",
            LoadPhase::RampDown => "ramp-down",
        }
    }
}

impl std::fmt::Display for LoadPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Offered load as a function of simulated time, as a fraction of saturation throughput.
///
/// All variants are deterministic functions of time: the only randomness in a run with a
/// time-varying profile is the arrival-sampling RNG, which is seeded exactly as before.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum LoadProfile {
    /// The classic fixed operating point (what every experiment used before profiles).
    Constant {
        /// Offered load fraction for the whole run.
        load: f64,
    },
    /// A single step change at a fixed time (the paper's "load transient").
    Step {
        /// Load fraction before the step.
        base: f64,
        /// Load fraction at and after the step.
        to: f64,
        /// Time of the step, in seconds.
        at_s: f64,
    },
    /// A sinusoidal day/night pattern: `base + amplitude * sin(2π (t + phase_s) / period_s)`,
    /// clamped to `[0, MAX_LOAD_FRACTION]`.
    Diurnal {
        /// Mean load fraction.
        base: f64,
        /// Half the peak-to-trough swing.
        amplitude: f64,
        /// Length of one full cycle, in seconds.
        period_s: f64,
        /// Time offset applied before evaluating the sinusoid, in seconds.
        phase_s: f64,
    },
    /// A flash crowd: steady at `base`, linear ramp to `peak` over `ramp_s` starting at
    /// `start_s`, hold for `hold_s`, then linear decay back to `base` over `decay_s`.
    FlashCrowd {
        /// Load fraction before and after the crowd.
        base: f64,
        /// Load fraction at the top of the spike.
        peak: f64,
        /// When the ramp begins, in seconds.
        start_s: f64,
        /// Ramp duration in seconds (0 = instantaneous jump).
        ramp_s: f64,
        /// How long the peak holds, in seconds.
        hold_s: f64,
        /// Decay duration in seconds (0 = instantaneous drop).
        decay_s: f64,
    },
    /// Piecewise-linear interpolation through `(time_s, load)` breakpoints (e.g. replayed
    /// from a production trace). Load is held flat before the first and after the last
    /// breakpoint.
    Trace {
        /// Breakpoints as `(time_s, load_fraction)` pairs, strictly increasing in time.
        points: Vec<(f64, f64)>,
    },
}

// Hand-written (not derived) so profile invariants — finite loads in range, sane
// durations, strictly-increasing trace breakpoints — are enforced at the archive
// boundary: a corrupted profile is rejected here with a descriptive error instead of
// driving the simulator with NaN. The mirror enum keeps the derived variant plumbing
// and the same externally-tagged wire names. The never-positive check is deliberately
// NOT applied here: a checkpointed simulator legitimately holds a zero-load profile
// mid-run (a balancer assigns a down or parked node no traffic — see
// `ColocationSim::set_load_profile`), so the wire layer is structural and the
// "offers load at some point" rule stays at the configuration boundaries
// (`Scenario::validate`, `ClusterScenario::validate`, `ColocationSim::new`).
impl serde::Deserialize for LoadProfile {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        #[derive(Deserialize)]
        enum LoadProfileWire {
            Constant {
                load: f64,
            },
            Step {
                base: f64,
                to: f64,
                at_s: f64,
            },
            Diurnal {
                base: f64,
                amplitude: f64,
                period_s: f64,
                phase_s: f64,
            },
            FlashCrowd {
                base: f64,
                peak: f64,
                start_s: f64,
                ramp_s: f64,
                hold_s: f64,
                decay_s: f64,
            },
            Trace {
                points: Vec<(f64, f64)>,
            },
        }
        let profile = match LoadProfileWire::from_value(value)? {
            LoadProfileWire::Constant { load } => LoadProfile::Constant { load },
            LoadProfileWire::Step { base, to, at_s } => LoadProfile::Step { base, to, at_s },
            LoadProfileWire::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            } => LoadProfile::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            },
            LoadProfileWire::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => LoadProfile::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            },
            LoadProfileWire::Trace { points } => LoadProfile::Trace { points },
        };
        match profile.validate() {
            Ok(()) | Err(LoadProfileError::NeverPositive) => Ok(profile),
            Err(e) => Err(serde::Error::custom(format!("invalid load profile: {e}"))),
        }
    }
}

/// Why a [`LoadProfile`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProfileError {
    /// A load fraction or time constant is NaN or infinite.
    NonFinite,
    /// A load fraction is negative or above [`MAX_LOAD_FRACTION`].
    OutOfRange,
    /// A duration (period, ramp, hold, decay) or step time is negative, or a period is
    /// zero.
    InvalidDuration,
    /// A trace profile has no breakpoints.
    EmptyTrace,
    /// Trace breakpoints are not strictly increasing in time.
    UnsortedTrace,
    /// A flash crowd's peak is below its base load (spikes go up; use [`LoadProfile::Step`]
    /// or [`LoadProfile::Trace`] for load drops).
    InvertedFlashCrowd,
    /// The profile never offers any load (maximum load is zero).
    NeverPositive,
}

impl std::fmt::Display for LoadProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            LoadProfileError::NonFinite => "load profile contains a non-finite value",
            LoadProfileError::OutOfRange => {
                "load fractions must lie in [0, 1.5] (see MAX_LOAD_FRACTION)"
            }
            LoadProfileError::InvalidDuration => {
                "profile durations must be non-negative (periods strictly positive)"
            }
            LoadProfileError::EmptyTrace => "trace profiles need at least one breakpoint",
            LoadProfileError::UnsortedTrace => {
                "trace breakpoints must be strictly increasing in time"
            }
            LoadProfileError::InvertedFlashCrowd => {
                "a flash crowd's peak must be at or above its base load"
            }
            LoadProfileError::NeverPositive => "the profile never offers any load",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for LoadProfileError {}

impl LoadProfile {
    /// The constant profile at `load` (what plain `load_fraction` scenarios use).
    pub fn constant(load: f64) -> Self {
        LoadProfile::Constant { load }
    }

    /// Whether the profile is constant in time.
    pub fn is_constant(&self) -> bool {
        match self {
            LoadProfile::Constant { .. } => true,
            LoadProfile::Step { base, to, .. } => base == to,
            LoadProfile::Diurnal { amplitude, .. } => *amplitude == 0.0,
            LoadProfile::FlashCrowd { base, peak, .. } => base == peak,
            LoadProfile::Trace { points } => points.iter().all(|(_, l)| *l == points[0].1),
        }
    }

    /// The offered load fraction at simulated time `t_s` (seconds), clamped to
    /// `[0, MAX_LOAD_FRACTION]`.
    pub fn load_at(&self, t_s: f64) -> f64 {
        let raw = match self {
            LoadProfile::Constant { load } => *load,
            LoadProfile::Step { base, to, at_s } => {
                if t_s < *at_s {
                    *base
                } else {
                    *to
                }
            }
            LoadProfile::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            } => {
                let theta = std::f64::consts::TAU * (t_s + phase_s) / period_s;
                base + amplitude * theta.sin()
            }
            LoadProfile::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => {
                if t_s < *start_s {
                    *base
                } else if t_s < start_s + ramp_s {
                    base + (peak - base) * (t_s - start_s) / ramp_s
                } else if t_s < start_s + ramp_s + hold_s {
                    *peak
                } else if t_s < start_s + ramp_s + hold_s + decay_s {
                    let into_decay = t_s - start_s - ramp_s - hold_s;
                    peak - (peak - base) * into_decay / decay_s
                } else {
                    *base
                }
            }
            LoadProfile::Trace { points } => interpolate(points, t_s),
        };
        raw.clamp(0.0, MAX_LOAD_FRACTION)
    }

    /// The smallest load the profile can offer.
    pub fn min_load(&self) -> f64 {
        match self {
            LoadProfile::Constant { load } => load.clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::Step { base, to, .. } => base.min(*to).clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::Diurnal {
                base, amplitude, ..
            } => (base - amplitude.abs()).clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::FlashCrowd { base, peak, .. } => {
                base.min(*peak).clamp(0.0, MAX_LOAD_FRACTION)
            }
            LoadProfile::Trace { points } => points
                .iter()
                .map(|(_, l)| l.clamp(0.0, MAX_LOAD_FRACTION))
                .fold(f64::INFINITY, f64::min),
        }
    }

    /// The largest load the profile can offer.
    pub fn max_load(&self) -> f64 {
        match self {
            LoadProfile::Constant { load } => load.clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::Step { base, to, .. } => base.max(*to).clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::Diurnal {
                base, amplitude, ..
            } => (base + amplitude.abs()).clamp(0.0, MAX_LOAD_FRACTION),
            LoadProfile::FlashCrowd { base, peak, .. } => {
                base.max(*peak).clamp(0.0, MAX_LOAD_FRACTION)
            }
            LoadProfile::Trace { points } => points
                .iter()
                .map(|(_, l)| l.clamp(0.0, MAX_LOAD_FRACTION))
                .fold(0.0, f64::max),
        }
    }

    /// Classifies simulated time `t_s` into a [`LoadPhase`].
    ///
    /// Step and flash-crowd profiles classify exactly from their piecewise structure;
    /// diurnal and trace profiles classify by level and slope: loads within 10% of the
    /// peak-to-trough swing of the top (bottom) extreme are [`LoadPhase::Peak`]
    /// ([`LoadPhase::Steady`]), and the local slope decides [`LoadPhase::RampUp`] vs
    /// [`LoadPhase::RampDown`] in between.
    pub fn phase_at(&self, t_s: f64) -> LoadPhase {
        match self {
            LoadProfile::Constant { .. } => LoadPhase::Steady,
            LoadProfile::Step { base, to, at_s } => {
                // Whichever era carries the higher load is the peak: a step up peaks
                // after `at_s`, a step down peaks before it.
                if base == to || (t_s >= *at_s) != (to > base) {
                    LoadPhase::Steady
                } else {
                    LoadPhase::Peak
                }
            }
            LoadProfile::Diurnal { period_s, .. } => self.slope_phase(t_s, *period_s),
            LoadProfile::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => {
                if base == peak || t_s < *start_s || t_s >= start_s + ramp_s + hold_s + decay_s {
                    LoadPhase::Steady
                } else if t_s < start_s + ramp_s {
                    LoadPhase::RampUp
                } else if t_s < start_s + ramp_s + hold_s {
                    LoadPhase::Peak
                } else {
                    LoadPhase::RampDown
                }
            }
            LoadProfile::Trace { points } => {
                let span = match (points.first(), points.last()) {
                    (Some((t0, _)), Some((t1, _))) if t1 > t0 => t1 - t0,
                    _ => return LoadPhase::Steady,
                };
                self.slope_phase(t_s, span)
            }
        }
    }

    /// Phase classification for smooth / piecewise-linear profiles. Level comes first:
    /// loads within 10% of the swing of the top (bottom) extreme classify as `Peak`
    /// (`Steady`), so a sinusoid reports meaningful peak/trough windows (~20% of the
    /// cycle each) instead of single instants at the extremes. In between, the local
    /// slope picks the ramp direction; a flat mid-level plateau (possible in traces)
    /// falls back to which extreme it sits closer to. `char_time_s` is the profile's
    /// characteristic duration (period or trace span).
    fn slope_phase(&self, t_s: f64, char_time_s: f64) -> LoadPhase {
        let (lo, hi) = (self.min_load(), self.max_load());
        let swing = hi - lo;
        if swing <= 1e-9 {
            return LoadPhase::Steady;
        }
        let load = self.load_at(t_s);
        let band = 0.10 * swing;
        if load >= hi - band {
            return LoadPhase::Peak;
        }
        if load <= lo + band {
            return LoadPhase::Steady;
        }
        let eps_s = char_time_s / 1024.0;
        let slope = (self.load_at(t_s + eps_s) - self.load_at(t_s - eps_s)) / (2.0 * eps_s);
        let flat_slope = 0.05 * swing / char_time_s;
        if slope > flat_slope {
            LoadPhase::RampUp
        } else if slope < -flat_slope {
            LoadPhase::RampDown
        } else if load > lo + swing / 2.0 {
            LoadPhase::Peak
        } else {
            LoadPhase::Steady
        }
    }

    /// Checks that every constant is finite, every load fraction is within
    /// `[0, MAX_LOAD_FRACTION]`, durations are sane, traces are non-empty and sorted, and
    /// the profile offers load at some point.
    pub fn validate(&self) -> Result<(), LoadProfileError> {
        let check_load = |l: f64| -> Result<(), LoadProfileError> {
            if !l.is_finite() {
                Err(LoadProfileError::NonFinite)
            } else if !(0.0..=MAX_LOAD_FRACTION).contains(&l) {
                Err(LoadProfileError::OutOfRange)
            } else {
                Ok(())
            }
        };
        let check_time = |t: f64| -> Result<(), LoadProfileError> {
            if !t.is_finite() {
                Err(LoadProfileError::NonFinite)
            } else if t < 0.0 {
                Err(LoadProfileError::InvalidDuration)
            } else {
                Ok(())
            }
        };
        match self {
            LoadProfile::Constant { load } => check_load(*load)?,
            LoadProfile::Step { base, to, at_s } => {
                check_load(*base)?;
                check_load(*to)?;
                check_time(*at_s)?;
            }
            LoadProfile::Diurnal {
                base,
                amplitude,
                period_s,
                phase_s,
            } => {
                check_load(*base)?;
                if !amplitude.is_finite() || !phase_s.is_finite() {
                    return Err(LoadProfileError::NonFinite);
                }
                if *amplitude < 0.0 || base + amplitude > MAX_LOAD_FRACTION {
                    return Err(LoadProfileError::OutOfRange);
                }
                if !period_s.is_finite() || *period_s <= 0.0 {
                    return Err(LoadProfileError::InvalidDuration);
                }
            }
            LoadProfile::FlashCrowd {
                base,
                peak,
                start_s,
                ramp_s,
                hold_s,
                decay_s,
            } => {
                check_load(*base)?;
                check_load(*peak)?;
                check_time(*start_s)?;
                check_time(*ramp_s)?;
                check_time(*hold_s)?;
                check_time(*decay_s)?;
                if peak < base {
                    return Err(LoadProfileError::InvertedFlashCrowd);
                }
            }
            LoadProfile::Trace { points } => {
                if points.is_empty() {
                    return Err(LoadProfileError::EmptyTrace);
                }
                for (t, l) in points {
                    if !t.is_finite() {
                        return Err(LoadProfileError::NonFinite);
                    }
                    check_load(*l)?;
                }
                if points.windows(2).any(|w| w[1].0 <= w[0].0) {
                    return Err(LoadProfileError::UnsortedTrace);
                }
            }
        }
        if self.max_load() <= 0.0 {
            return Err(LoadProfileError::NeverPositive);
        }
        Ok(())
    }

    /// Compact label used when profiles are swept as a suite axis.
    pub fn describe(&self) -> String {
        match self {
            LoadProfile::Constant { load } => format!("const{load:.2}"),
            LoadProfile::Step { to, at_s, .. } => format!("step{to:.2}@{at_s:.0}s"),
            LoadProfile::Diurnal {
                amplitude,
                period_s,
                ..
            } => format!("diurnal±{amplitude:.2}/{period_s:.0}s"),
            LoadProfile::FlashCrowd { peak, start_s, .. } => {
                format!("flash{peak:.2}@{start_s:.0}s")
            }
            LoadProfile::Trace { points } => format!("trace[{}]", points.len()),
        }
    }
}

/// Piecewise-linear interpolation through sorted breakpoints, flat extrapolation outside.
fn interpolate(points: &[(f64, f64)], t_s: f64) -> f64 {
    match points {
        [] => 0.0,
        [(_, only)] => *only,
        _ => {
            let (t0, l0) = points[0];
            if t_s <= t0 {
                return l0;
            }
            let (tn, ln) = points[points.len() - 1];
            if t_s >= tn {
                return ln;
            }
            for w in points.windows(2) {
                let (ta, la) = w[0];
                let (tb, lb) = w[1];
                if t_s < tb {
                    return la + (lb - la) * (t_s - ta) / (tb - ta);
                }
            }
            ln
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flash() -> LoadProfile {
        LoadProfile::FlashCrowd {
            base: 0.4,
            peak: 1.0,
            start_s: 30.0,
            ramp_s: 5.0,
            hold_s: 15.0,
            decay_s: 10.0,
        }
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = LoadProfile::constant(0.75);
        for t in [0.0, 10.0, 1e6] {
            assert_eq!(p.load_at(t), 0.75);
            assert_eq!(p.phase_at(t), LoadPhase::Steady);
        }
        assert!(p.is_constant());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn step_switches_levels_exactly_once() {
        let p = LoadProfile::Step {
            base: 0.5,
            to: 0.9,
            at_s: 20.0,
        };
        assert_eq!(p.load_at(19.999), 0.5);
        assert_eq!(p.load_at(20.0), 0.9);
        assert_eq!(p.phase_at(0.0), LoadPhase::Steady);
        assert_eq!(p.phase_at(20.0), LoadPhase::Peak);
        assert_eq!(p.min_load(), 0.5);
        assert_eq!(p.max_load(), 0.9);
        // A step down peaks *before* the switch: the higher-load era is the peak.
        let down = LoadProfile::Step {
            base: 0.9,
            to: 0.2,
            at_s: 30.0,
        };
        assert_eq!(down.phase_at(10.0), LoadPhase::Peak);
        assert_eq!(down.phase_at(30.0), LoadPhase::Steady);
    }

    #[test]
    fn diurnal_oscillates_about_its_base() {
        let p = LoadProfile::Diurnal {
            base: 0.6,
            amplitude: 0.3,
            period_s: 100.0,
            phase_s: 0.0,
        };
        assert!((p.load_at(25.0) - 0.9).abs() < 1e-9, "sin peak at T/4");
        assert!((p.load_at(75.0) - 0.3).abs() < 1e-9, "sin trough at 3T/4");
        assert_eq!(p.phase_at(25.0), LoadPhase::Peak);
        assert_eq!(p.phase_at(75.0), LoadPhase::Steady);
        assert_eq!(p.phase_at(10.0), LoadPhase::RampUp);
        assert_eq!(p.phase_at(60.0), LoadPhase::RampDown);
        assert!(p.validate().is_ok());
        assert!(!p.is_constant());
    }

    #[test]
    fn diurnal_clamps_at_zero() {
        let p = LoadProfile::Diurnal {
            base: 0.2,
            amplitude: 0.5,
            period_s: 100.0,
            phase_s: 0.0,
        };
        assert_eq!(p.load_at(75.0), 0.0);
        assert_eq!(p.min_load(), 0.0);
    }

    #[test]
    fn flash_crowd_ramps_holds_and_decays() {
        let p = flash();
        assert_eq!(p.load_at(0.0), 0.4);
        assert!((p.load_at(32.5) - 0.7).abs() < 1e-9, "mid-ramp");
        assert_eq!(p.load_at(35.0), 1.0);
        assert_eq!(p.load_at(49.9), 1.0);
        assert!((p.load_at(55.0) - 0.7).abs() < 1e-9, "mid-decay");
        assert_eq!(p.load_at(60.0), 0.4);
        assert_eq!(p.phase_at(10.0), LoadPhase::Steady);
        assert_eq!(p.phase_at(32.0), LoadPhase::RampUp);
        assert_eq!(p.phase_at(40.0), LoadPhase::Peak);
        assert_eq!(p.phase_at(55.0), LoadPhase::RampDown);
        assert_eq!(p.phase_at(80.0), LoadPhase::Steady);
    }

    #[test]
    fn instantaneous_flash_crowd_is_a_square_pulse() {
        let p = LoadProfile::FlashCrowd {
            base: 0.5,
            peak: 1.1,
            start_s: 10.0,
            ramp_s: 0.0,
            hold_s: 5.0,
            decay_s: 0.0,
        };
        assert_eq!(p.load_at(9.999), 0.5);
        assert_eq!(p.load_at(10.0), 1.1);
        assert_eq!(p.load_at(14.999), 1.1);
        assert_eq!(p.load_at(15.0), 0.5);
        assert_eq!(p.phase_at(12.0), LoadPhase::Peak);
    }

    #[test]
    fn trace_interpolates_and_extrapolates_flat() {
        let p = LoadProfile::Trace {
            points: vec![(10.0, 0.4), (20.0, 0.8), (40.0, 0.2)],
        };
        assert_eq!(p.load_at(0.0), 0.4, "flat before the first breakpoint");
        assert!((p.load_at(15.0) - 0.6).abs() < 1e-9);
        assert!((p.load_at(30.0) - 0.5).abs() < 1e-9);
        assert_eq!(p.load_at(100.0), 0.2, "flat after the last breakpoint");
        assert_eq!(p.phase_at(15.0), LoadPhase::RampUp);
        assert_eq!(p.phase_at(30.0), LoadPhase::RampDown);
        assert_eq!(p.min_load(), 0.2);
        assert_eq!(p.max_load(), 0.8);
    }

    #[test]
    fn single_point_trace_is_constant() {
        let p = LoadProfile::Trace {
            points: vec![(5.0, 0.7)],
        };
        assert_eq!(p.load_at(0.0), 0.7);
        assert_eq!(p.load_at(50.0), 0.7);
        assert!(p.is_constant());
        assert_eq!(p.phase_at(50.0), LoadPhase::Steady);
    }

    #[test]
    fn validation_rejects_bad_profiles() {
        assert_eq!(
            LoadProfile::constant(f64::NAN).validate(),
            Err(LoadProfileError::NonFinite)
        );
        assert_eq!(
            LoadProfile::constant(2.0).validate(),
            Err(LoadProfileError::OutOfRange)
        );
        assert_eq!(
            LoadProfile::constant(0.0).validate(),
            Err(LoadProfileError::NeverPositive)
        );
        assert_eq!(
            LoadProfile::Diurnal {
                base: 0.5,
                amplitude: 0.2,
                period_s: 0.0,
                phase_s: 0.0,
            }
            .validate(),
            Err(LoadProfileError::InvalidDuration)
        );
        assert_eq!(
            LoadProfile::Trace { points: vec![] }.validate(),
            Err(LoadProfileError::EmptyTrace)
        );
        assert_eq!(
            LoadProfile::Trace {
                points: vec![(10.0, 0.4), (10.0, 0.6)],
            }
            .validate(),
            Err(LoadProfileError::UnsortedTrace)
        );
        assert_eq!(
            LoadProfile::FlashCrowd {
                base: 0.4,
                peak: 1.0,
                start_s: -1.0,
                ramp_s: 5.0,
                hold_s: 5.0,
                decay_s: 5.0,
            }
            .validate(),
            Err(LoadProfileError::InvalidDuration)
        );
        // Spikes go up: an inverted flash crowd would flip the ramp/peak phase labels.
        assert_eq!(
            LoadProfile::FlashCrowd {
                base: 0.9,
                peak: 0.3,
                start_s: 10.0,
                ramp_s: 2.0,
                hold_s: 5.0,
                decay_s: 2.0,
            }
            .validate(),
            Err(LoadProfileError::InvertedFlashCrowd)
        );
    }

    #[test]
    fn profiles_round_trip_through_json() {
        let profiles = vec![
            LoadProfile::constant(0.75),
            LoadProfile::Step {
                base: 0.4,
                to: 0.9,
                at_s: 30.0,
            },
            LoadProfile::Diurnal {
                base: 0.6,
                amplitude: 0.25,
                period_s: 600.0,
                phase_s: 150.0,
            },
            flash(),
            LoadProfile::Trace {
                points: vec![(0.0, 0.3), (60.0, 0.9), (120.0, 0.5)],
            },
        ];
        for p in profiles {
            let json = serde_json::to_string(&p).expect("serializable");
            let back: LoadProfile = serde_json::from_str(&json).expect("deserializable");
            assert_eq!(back, p);
            // Evaluation is identical through the round trip.
            for t in [0.0, 17.0, 45.0, 90.0, 1000.0] {
                assert_eq!(back.load_at(t), p.load_at(t));
                assert_eq!(back.phase_at(t), p.phase_at(t));
            }
        }
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(LoadPhase::all().len(), 4);
        let names: Vec<&str> = LoadPhase::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, ["steady", "ramp-up", "peak", "ramp-down"]);
        assert_eq!(LoadPhase::RampUp.to_string(), "ramp-up");
        // The serialized representation matches the display name, so JSON archives never
        // disagree with printed tables (same convention as PolicyKind).
        for phase in LoadPhase::all() {
            let json = serde_json::to_string(&phase).expect("serializable");
            assert_eq!(json, format!("\"{}\"", phase.name()));
            let back: LoadPhase = serde_json::from_str(&json).expect("deserializable");
            assert_eq!(back, phase);
        }
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(LoadProfile::constant(0.75).describe(), "const0.75");
        assert_eq!(flash().describe(), "flash1.00@30s");
        assert_eq!(
            LoadProfile::Trace {
                points: vec![(0.0, 0.5), (1.0, 0.6)],
            }
            .describe(),
            "trace[2]"
        );
    }
}
