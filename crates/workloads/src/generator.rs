//! Open-loop workload generation.
//!
//! The paper drives every interactive service with open-loop client generators: requests
//! arrive according to the offered load regardless of how quickly the server responds,
//! which is what makes tail latency explode once the service saturates. The
//! [`OpenLoopGenerator`] produces Poisson arrival counts and exact arrival timestamps for
//! the simulators.

use serde::Serialize;

use pliant_telemetry::fastmath::fast_ln;
use pliant_telemetry::rng::{sample_poisson, seeded_rng};
use rand::rngs::SmallRng;
use rand::Rng;

/// An open-loop (Poisson) request generator with a fixed target rate.
#[derive(Debug, Clone, Serialize)]
pub struct OpenLoopGenerator {
    qps: f64,
    seed: u64,
    #[serde(skip)]
    rng: SmallRng,
}

// Hand-written so a deserialized generator reconstructs its RNG from the archived `seed`
// instead of falling back to a fixed default stream: a scenario replayed from a JSON
// archive must produce the same arrival sequence as the original run.
impl serde::Deserialize for OpenLoopGenerator {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let qps = <f64 as serde::Deserialize>::from_value(
            value
                .get("qps")
                .ok_or_else(|| serde::Error::missing_field("OpenLoopGenerator", "qps"))?,
        )?;
        let seed = <u64 as serde::Deserialize>::from_value(
            value
                .get("seed")
                .ok_or_else(|| serde::Error::missing_field("OpenLoopGenerator", "seed"))?,
        )?;
        if !(qps.is_finite() && qps >= 0.0) {
            return Err(serde::Error::custom(
                "OpenLoopGenerator qps must be non-negative and finite",
            ));
        }
        Ok(Self::new(qps, seed))
    }
}

impl OpenLoopGenerator {
    /// Creates a generator issuing `qps` requests per second on average.
    ///
    /// # Panics
    ///
    /// Panics if `qps` is negative or not finite.
    pub fn new(qps: f64, seed: u64) -> Self {
        assert!(qps.is_finite() && qps >= 0.0, "qps must be non-negative");
        Self {
            qps,
            seed,
            rng: seeded_rng(seed),
        }
    }

    /// Target request rate in queries per second.
    pub fn qps(&self) -> f64 {
        self.qps
    }

    /// Changes the offered load (used by the load-sweep experiments).
    pub fn set_qps(&mut self, qps: f64) {
        assert!(qps.is_finite() && qps >= 0.0, "qps must be non-negative");
        self.qps = qps;
    }

    /// Samples the number of requests arriving within a window of `window_s` seconds.
    pub fn arrivals_in(&mut self, window_s: f64) -> u64 {
        if self.qps <= 0.0 || window_s <= 0.0 {
            return 0;
        }
        sample_poisson(&mut self.rng, self.qps * window_s)
    }

    /// Samples explicit arrival timestamps (seconds, relative to the window start) for a
    /// window of `window_s` seconds. Used by the discrete-event simulator; the count
    /// follows the same Poisson process as [`Self::arrivals_in`].
    ///
    /// Convenience wrapper over [`Self::arrival_times_into`] that allocates a fresh
    /// vector per call.
    pub fn arrival_times_in(&mut self, window_s: f64) -> Vec<f64> {
        let mut times = Vec::new();
        self.arrival_times_into(window_s, &mut times);
        times
    }

    /// Clears `out` and fills it with the window's arrival timestamps (see
    /// [`Self::arrival_times_in`]).
    ///
    /// This is the batch entry point for drivers that generate arrivals every window:
    /// the caller's buffer is reused across windows, the expected arrival count is
    /// reserved up front, and the exponential gaps are sampled with the polynomial
    /// [`fast_ln`] instead of one `libm` call per request — an arrival-stream analogue
    /// of the latency sampler's batch path.
    pub fn arrival_times_into(&mut self, window_s: f64, out: &mut Vec<f64>) {
        out.clear();
        if self.qps <= 0.0 || window_s <= 0.0 {
            return;
        }
        out.reserve((self.qps * window_s) as usize + 1);
        let mut t = 0.0;
        loop {
            // Inverse-CDF exponential gap; the uniform is drawn on the same half-open
            // range as `sample_exponential` so a zero can never reach the logarithm.
            let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -fast_ln(u) / self.qps;
            if t >= window_s {
                break;
            }
            out.push(t);
        }
    }

    /// Resets the generator to its initial seed, replaying the identical arrival stream.
    pub fn reset(&mut self) {
        self.rng = seeded_rng(self.seed);
    }

    /// The seed the generator was built with (the stream [`Self::reset`] replays).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The arrival RNG's internal state, for checkpointing (see
    /// [`pliant_telemetry::rng::rng_state_words`]).
    pub fn rng_state(&self) -> Vec<u64> {
        pliant_telemetry::rng::rng_state_words(&self.rng)
    }

    /// Restores the arrival RNG to a state captured by [`Self::rng_state`], so the
    /// generator continues the stream exactly where the snapshot left off.
    ///
    /// # Errors
    ///
    /// Rejects malformed wire states (wrong width or all-zero).
    pub fn restore_rng_state(&mut self, words: &[u64]) -> Result<(), String> {
        self.rng = pliant_telemetry::rng::rng_from_state_words(words)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arrivals_track_offered_load() {
        let mut gen = OpenLoopGenerator::new(10_000.0, 3);
        let total: u64 = (0..100).map(|_| gen.arrivals_in(0.1)).sum();
        // 100 windows of 0.1 s at 10 K QPS → about 100 K arrivals.
        assert!((total as f64 - 100_000.0).abs() < 5_000.0, "total {total}");
    }

    #[test]
    fn zero_rate_or_zero_window_produces_no_arrivals() {
        let mut idle = OpenLoopGenerator::new(0.0, 1);
        assert_eq!(idle.arrivals_in(10.0), 0);
        assert!(idle.arrival_times_in(10.0).is_empty());
        let mut busy = OpenLoopGenerator::new(100.0, 1);
        assert_eq!(busy.arrivals_in(0.0), 0);
    }

    #[test]
    fn arrival_times_are_sorted_and_within_window() {
        let mut gen = OpenLoopGenerator::new(5_000.0, 9);
        let times = gen.arrival_times_in(0.05);
        assert!(!times.is_empty());
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|t| *t >= 0.0 && *t < 0.05));
    }

    #[test]
    fn reset_replays_identical_stream() {
        let mut gen = OpenLoopGenerator::new(2_000.0, 11);
        let first: Vec<u64> = (0..10).map(|_| gen.arrivals_in(0.01)).collect();
        gen.reset();
        let second: Vec<u64> = (0..10).map(|_| gen.arrivals_in(0.01)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn set_qps_changes_rate() {
        let mut gen = OpenLoopGenerator::new(1_000.0, 5);
        gen.set_qps(100_000.0);
        assert_eq!(gen.qps(), 100_000.0);
        let arrivals = gen.arrivals_in(0.1);
        assert!(
            arrivals > 5_000,
            "arrivals {arrivals} should reflect the new rate"
        );
    }

    #[test]
    #[should_panic]
    fn negative_qps_rejected() {
        let _ = OpenLoopGenerator::new(-1.0, 0);
    }

    #[test]
    fn deserialized_generator_replays_the_seeded_stream() {
        // Regression: `#[serde(skip, default = ...)]` left a deserialized generator on
        // `seeded_rng(0)` regardless of its stored seed, so an archived scenario replayed
        // a different arrival stream. The seed here is deliberately non-zero.
        let gen = OpenLoopGenerator::new(8_000.0, 1234);
        let json = serde_json::to_string(&gen).expect("serializable");
        let mut restored: OpenLoopGenerator = serde_json::from_str(&json).expect("deserializable");
        let mut fresh = OpenLoopGenerator::new(8_000.0, 1234);
        let restored_counts: Vec<u64> = (0..20).map(|_| restored.arrivals_in(0.05)).collect();
        let fresh_counts: Vec<u64> = (0..20).map(|_| fresh.arrivals_in(0.05)).collect();
        assert_eq!(restored_counts, fresh_counts);
        let mut zero_seeded = OpenLoopGenerator::new(8_000.0, 0);
        let zero_counts: Vec<u64> = (0..20).map(|_| zero_seeded.arrivals_in(0.05)).collect();
        assert_ne!(
            restored_counts, zero_counts,
            "the restored stream must come from the archived seed, not seed 0"
        );
    }

    #[test]
    fn deserializing_invalid_qps_fails_instead_of_panicking() {
        let bad = r#"{"qps": -5.0, "seed": 3}"#;
        assert!(serde_json::from_str::<OpenLoopGenerator>(bad).is_err());
        let missing = r#"{"qps": 100.0}"#;
        assert!(serde_json::from_str::<OpenLoopGenerator>(missing).is_err());
    }

    proptest! {
        #[test]
        fn prop_arrival_counts_nonnegative_and_bounded(
            qps in 0.0f64..50_000.0,
            window in 0.001f64..0.5,
            seed in 0u64..500,
        ) {
            let mut gen = OpenLoopGenerator::new(qps, seed);
            let n = gen.arrivals_in(window);
            // Allow generous head-room above the mean (Poisson tail).
            prop_assert!((n as f64) < qps * window + 10.0 * (qps * window).sqrt() + 50.0);
        }

        #[test]
        fn prop_arrival_times_count_similar_to_counts(seed in 0u64..200) {
            let mut a = OpenLoopGenerator::new(20_000.0, seed);
            let times = a.arrival_times_in(0.1);
            prop_assert!((times.len() as f64 - 2_000.0).abs() < 500.0);
        }
    }
}
