//! Approximate-computing applications and approximation techniques for the Pliant
//! reproduction.
//!
//! The paper evaluates Pliant with 24 approximate applications drawn from PARSEC,
//! SPLASH-2, MineBench, and BioPerf. This crate provides:
//!
//! * [`techniques`] — the approximation strategies the paper explores (loop perforation,
//!   synchronization elision, reduced precision, input sampling), as reusable adapters.
//! * [`kernel`] — the [`kernel::ApproxKernel`] trait plus the configuration and quality
//!   types the design-space exploration operates on.
//! * [`kernels`] — simplified but genuine Rust implementations of all 24 applications,
//!   grouped by benchmark suite. Each kernel exposes the perforable sites / precision knobs
//!   its original counterpart exposes and measures output quality against its own precise
//!   execution.
//! * [`catalog`] — calibrated per-application profiles (ordered approximate variants,
//!   resource pressure on cores/LLC/memory bandwidth) used by the co-location simulator and
//!   the Pliant runtime. Catalog entries mirror the qualitative characteristics reported in
//!   the paper (e.g. canneal has 4 pareto variants and is LLC-heavy; Bayesian and PLSA have
//!   8 variants; raytrace has only 2).
//! * [`data`] — deterministic synthetic input generators shared by the kernels.
//!
//! # Example
//!
//! ```
//! use pliant_approx::kernel::{ApproxConfig, ApproxKernel};
//! use pliant_approx::kernels::minebench::kmeans::KMeansKernel;
//!
//! let kernel = KMeansKernel::small(42);
//! let precise = kernel.run(&ApproxConfig::precise());
//! // Every candidate approximate configuration must cost no more work than precise.
//! for cfg in kernel.candidate_configs() {
//!     let run = kernel.run(&cfg);
//!     assert!(run.cost.ops <= precise.cost.ops);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// The numeric kernels intentionally use index-based loops over multiple parallel arrays
// (centres/sums/labels, …) where iterator zips would obscure the maths being mirrored
// from the original benchmarks.
#![allow(clippy::needless_range_loop)]

pub mod catalog;
pub mod data;
pub mod kernel;
pub mod kernels;
pub mod techniques;

pub use catalog::{AppId, AppProfile, Catalog, ResourcePressure, VariantProfile};
pub use kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun};
pub use techniques::{Perforation, Precision};
