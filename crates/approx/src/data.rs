//! Deterministic synthetic input generators shared by the kernels.
//!
//! The original benchmark suites ship reference inputs (netlists, point clouds, genomic
//! sequences, document-term matrices). Those datasets are not available here, so each
//! kernel generates a synthetic input of the same *shape* from a seed. All generators are
//! deterministic in the seed so that precise and approximate runs of the same kernel
//! instance see identical inputs and quality comparisons are meaningful.

use rand::Rng;

use pliant_telemetry::rng::{sample_standard_normal, seeded_rng};

/// A dense point cloud in `dims` dimensions with `n` points, drawn from a mixture of
/// Gaussian clusters so that clustering kernels have real structure to recover.
#[derive(Debug, Clone)]
pub struct PointCloud {
    /// Number of dimensions per point.
    pub dims: usize,
    /// Flattened row-major point data (`n * dims` values).
    pub data: Vec<f64>,
    /// Ground-truth cluster id of each point.
    pub true_labels: Vec<u32>,
}

impl PointCloud {
    /// Generates `n` points in `dims` dimensions from `clusters` Gaussian components.
    pub fn gaussian_mixture(seed: u64, n: usize, dims: usize, clusters: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let clusters = clusters.max(1);
        // Cluster centres on a scaled lattice plus jitter so they are well separated.
        let centres: Vec<Vec<f64>> = (0..clusters)
            .map(|c| {
                (0..dims)
                    .map(|d| ((c * 7 + d * 3) % 13) as f64 * 2.5 + rng.gen_range(-0.5..0.5))
                    .collect()
            })
            .collect();
        let mut data = Vec::with_capacity(n * dims);
        let mut true_labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % clusters;
            true_labels.push(c as u32);
            for d in 0..dims {
                data.push(centres[c][d] + 0.6 * sample_standard_normal(&mut rng));
            }
        }
        Self {
            dims,
            data,
            true_labels,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dims).unwrap_or(0)
    }

    /// Whether the cloud contains no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowing accessor for point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dims..(i + 1) * self.dims]
    }

    /// Squared Euclidean distance between point `i` and an arbitrary coordinate slice.
    pub fn dist2(&self, i: usize, other: &[f64]) -> f64 {
        self.point(i)
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// A random sparse document/term-like count matrix used by PLSA and Bayesian kernels.
#[derive(Debug, Clone)]
pub struct CountMatrix {
    /// Number of rows (documents / samples).
    pub rows: usize,
    /// Number of columns (terms / features).
    pub cols: usize,
    /// Dense row-major counts.
    pub counts: Vec<f64>,
}

impl CountMatrix {
    /// Generates a matrix whose rows follow one of `topics` latent column distributions.
    pub fn synthetic(seed: u64, rows: usize, cols: usize, topics: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let topics = topics.max(1);
        // Topic-conditional column weights.
        let topic_weights: Vec<Vec<f64>> = (0..topics)
            .map(|t| {
                (0..cols)
                    .map(|c| {
                        let peak = (t * cols / topics + cols / (2 * topics)) as f64;
                        let d = (c as f64 - peak).abs();
                        (1.0 / (1.0 + d)).max(0.01) + rng.gen_range(0.0..0.05)
                    })
                    .collect()
            })
            .collect();
        let mut counts = vec![0.0; rows * cols];
        for r in 0..rows {
            let t = r % topics;
            let total: f64 = topic_weights[t].iter().sum();
            for c in 0..cols {
                let expected = 20.0 * topic_weights[t][c] / total;
                let jitter: f64 = rng.gen_range(0.0..1.0);
                counts[r * cols + c] = (expected + jitter).floor();
            }
        }
        Self { rows, cols, counts }
    }

    /// Value at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.counts[row * self.cols + col]
    }
}

/// Alphabet used by the genomic sequence generators.
pub const DNA_ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];
/// Alphabet used by the protein sequence generators (reduced, 8 letters).
pub const PROTEIN_ALPHABET: [u8; 8] = [b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G'];

/// Generates a random sequence over the given alphabet.
pub fn random_sequence(seed: u64, len: usize, alphabet: &[u8]) -> Vec<u8> {
    let mut rng = seeded_rng(seed);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
        .collect()
}

/// Generates a family of sequences that are mutated copies of one ancestor, so alignment
/// kernels have real homology to find.
///
/// `mutation_rate` is the per-position probability of substitution; small indels are
/// applied with 10% of that rate.
pub fn related_sequences(
    seed: u64,
    count: usize,
    len: usize,
    mutation_rate: f64,
    alphabet: &[u8],
) -> Vec<Vec<u8>> {
    let ancestor = random_sequence(seed, len, alphabet);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut rng = seeded_rng(seed.wrapping_add(1000 + i as u64));
        let mut s = Vec::with_capacity(len);
        for &base in &ancestor {
            let r: f64 = rng.gen_range(0.0..1.0);
            if r < mutation_rate * 0.1 {
                // Deletion: skip the base.
                continue;
            } else if r < mutation_rate {
                s.push(alphabet[rng.gen_range(0..alphabet.len())]);
            } else {
                s.push(base);
            }
            if rng.gen_range(0.0f64..1.0) < mutation_rate * 0.1 {
                // Insertion.
                s.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out.push(s);
    }
    out
}

/// A synthetic netlist for the canneal kernel: elements on a 2-D grid with random
/// connectivity, where placement cost is total Manhattan wire length.
#[derive(Debug, Clone)]
pub struct Netlist {
    /// Number of elements.
    pub elements: usize,
    /// Edges between elements (pairs of element ids).
    pub nets: Vec<(u32, u32)>,
    /// Grid width (placement positions are `0..elements` mapped onto a `width × height`
    /// grid).
    pub width: usize,
}

impl Netlist {
    /// Generates a netlist with `elements` cells and roughly `edges_per_element` nets per
    /// cell, biased toward nearby cells so that annealing has locality to exploit.
    pub fn synthetic(seed: u64, elements: usize, edges_per_element: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let width = (elements as f64).sqrt().ceil() as usize;
        let mut nets = Vec::with_capacity(elements * edges_per_element);
        for e in 0..elements {
            for _ in 0..edges_per_element {
                let span = (elements / 10).max(2);
                let offset = rng.gen_range(1..span);
                let other = (e + offset) % elements;
                nets.push((e as u32, other as u32));
            }
        }
        Self {
            elements,
            nets,
            width: width.max(1),
        }
    }

    /// Manhattan wire length of a placement (permutation of element → slot).
    pub fn wire_length(&self, placement: &[u32]) -> f64 {
        let w = self.width as i64;
        let mut total = 0.0;
        for &(a, b) in &self.nets {
            let pa = placement[a as usize] as i64;
            let pb = placement[b as usize] as i64;
            let (xa, ya) = (pa % w, pa / w);
            let (xb, yb) = (pb % w, pb / w);
            total += ((xa - xb).abs() + (ya - yb).abs()) as f64;
        }
        total
    }
}

/// A synthetic genotype matrix for the SNP kernel: `samples × markers` genotypes in
/// {0, 1, 2} plus a binary phenotype correlated with a subset of causal markers.
#[derive(Debug, Clone)]
pub struct GenotypeMatrix {
    /// Number of samples (individuals).
    pub samples: usize,
    /// Number of markers (SNPs).
    pub markers: usize,
    /// Row-major genotypes.
    pub genotypes: Vec<u8>,
    /// Binary phenotype per sample.
    pub phenotypes: Vec<u8>,
}

impl GenotypeMatrix {
    /// Generates a genotype matrix where every 20th marker is causal.
    pub fn synthetic(seed: u64, samples: usize, markers: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let mut genotypes = vec![0u8; samples * markers];
        let mut phenotypes = vec![0u8; samples];
        for s in 0..samples {
            let mut risk = 0.0;
            for m in 0..markers {
                let g = rng.gen_range(0..3u8);
                genotypes[s * markers + m] = g;
                if m % 20 == 0 {
                    risk += g as f64 * 0.3;
                }
            }
            // Threshold at the expected risk (mean genotype 1.0 × 0.3 per causal marker) so
            // roughly half the cohort is affected and causal markers carry real signal.
            let threshold = markers as f64 / 20.0 * 0.3;
            phenotypes[s] = u8::from(risk + rng.gen_range(-0.5..0.5) > threshold);
        }
        Self {
            samples,
            markers,
            genotypes,
            phenotypes,
        }
    }

    /// Genotype of `sample` at `marker`.
    pub fn genotype(&self, sample: usize, marker: usize) -> u8 {
        self.genotypes[sample * self.markers + marker]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_cloud_shape_and_determinism() {
        let a = PointCloud::gaussian_mixture(1, 100, 3, 4);
        let b = PointCloud::gaussian_mixture(1, 100, 3, 4);
        assert_eq!(a.len(), 100);
        assert_eq!(a.dims, 3);
        assert_eq!(a.data, b.data);
        assert_eq!(a.true_labels.len(), 100);
        assert!(!a.is_empty());
        assert_eq!(a.point(5).len(), 3);
    }

    #[test]
    fn point_cloud_clusters_are_separated() {
        let pc = PointCloud::gaussian_mixture(7, 400, 2, 4);
        // Points in the same true cluster should on average be closer than points in
        // different clusters.
        let mut same = (0.0, 0);
        let mut diff = (0.0, 0);
        for i in (0..pc.len()).step_by(7) {
            for j in (0..pc.len()).step_by(11) {
                if i == j {
                    continue;
                }
                let d = pc.dist2(i, pc.point(j));
                if pc.true_labels[i] == pc.true_labels[j] {
                    same = (same.0 + d, same.1 + 1);
                } else {
                    diff = (diff.0 + d, diff.1 + 1);
                }
            }
        }
        let mean_same = same.0 / same.1 as f64;
        let mean_diff = diff.0 / diff.1 as f64;
        assert!(
            mean_same < mean_diff,
            "same-cluster mean distance {mean_same} should be below cross-cluster {mean_diff}"
        );
    }

    #[test]
    fn count_matrix_dimensions() {
        let m = CountMatrix::synthetic(3, 20, 30, 4);
        assert_eq!(m.rows, 20);
        assert_eq!(m.cols, 30);
        assert_eq!(m.counts.len(), 600);
        assert!(m.at(0, 0) >= 0.0);
    }

    #[test]
    fn sequences_use_alphabet() {
        let s = random_sequence(5, 200, &DNA_ALPHABET);
        assert_eq!(s.len(), 200);
        assert!(s.iter().all(|c| DNA_ALPHABET.contains(c)));
    }

    #[test]
    fn related_sequences_are_similar_but_not_identical() {
        let fam = related_sequences(11, 4, 300, 0.05, &DNA_ALPHABET);
        assert_eq!(fam.len(), 4);
        for s in &fam {
            assert!((s.len() as i64 - 300).unsigned_abs() < 60);
        }
        assert_ne!(fam[0], fam[1]);
        // Hamming similarity over the common prefix should beat the 25% random baseline by
        // a clear margin (indels shift the frame, so it will not be near 100%).
        let common = fam[0].len().min(fam[1].len());
        let matches = (0..common).filter(|&i| fam[0][i] == fam[1][i]).count();
        assert!(matches as f64 / common as f64 > 0.35);
    }

    #[test]
    fn netlist_wire_length_positive_and_permutation_sensitive() {
        let n = Netlist::synthetic(9, 64, 3);
        let identity: Vec<u32> = (0..64u32).collect();
        let reversed: Vec<u32> = (0..64u32).rev().collect();
        let a = n.wire_length(&identity);
        let b = n.wire_length(&reversed);
        assert!(a > 0.0);
        assert!(b > 0.0);
        // The netlist is biased toward local connectivity, so identity placement should be
        // no worse than a fully reversed placement by a large margin... but at minimum the
        // two placements must be evaluated consistently.
        assert_ne!(a, 0.0);
    }

    #[test]
    fn genotype_matrix_values_in_range() {
        let g = GenotypeMatrix::synthetic(13, 50, 100);
        assert_eq!(g.genotypes.len(), 5000);
        assert!(g.genotypes.iter().all(|&x| x <= 2));
        assert!(g.phenotypes.iter().all(|&x| x <= 1));
        assert!(g.genotype(0, 0) <= 2);
    }
}
