//! Approximation techniques.
//!
//! The paper (§3) explores three families of approximation strategies: **loop
//! perforation**, **synchronization elision**, and **lower-precision data types**. This
//! module provides them as small, reusable adapters that the kernels apply to their inner
//! loops and data, plus input **sampling**, which several MineBench/BioPerf kernels use as
//! their natural perforation target.

use serde::{Deserialize, Serialize};

/// How a loop is perforated.
///
/// Matches the mechanisms described in §3 of the paper: execute only a prefix chunk of the
/// iterations, execute every p-th iteration, or skip every p-th iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Perforation {
    /// Precise execution: run every iteration.
    #[default]
    None,
    /// Run only the first `ceil(n / p)` iterations (factor `p >= 1`).
    TruncateBy(u32),
    /// Run every `p`-th iteration only (keeps ~`1/p` of iterations, `p >= 1`).
    KeepEveryNth(u32),
    /// Skip every `p`-th iteration (keeps ~`(p-1)/p` of iterations, `p >= 2`).
    SkipEveryNth(u32),
    /// Keep each iteration with the given probability, decided by a deterministic hash of
    /// the iteration index (stateless, reproducible).
    KeepFraction(f64),
}

impl Perforation {
    /// Returns whether iteration `i` of a loop with `n` total iterations should execute.
    pub fn keeps(&self, i: usize, n: usize) -> bool {
        match *self {
            Perforation::None => true,
            Perforation::TruncateBy(p) => {
                let p = p.max(1) as usize;
                i < n.div_ceil(p)
            }
            Perforation::KeepEveryNth(p) => {
                let p = p.max(1) as usize;
                i.is_multiple_of(p)
            }
            Perforation::SkipEveryNth(p) => {
                let p = p.max(2) as usize;
                !(i + 1).is_multiple_of(p)
            }
            Perforation::KeepFraction(f) => {
                if f >= 1.0 {
                    return true;
                }
                if f <= 0.0 {
                    return false;
                }
                // SplitMix-style hash of the index → uniform in [0,1).
                let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) < f
            }
        }
    }

    /// Expected fraction of iterations kept (in `[0, 1]`).
    pub fn expected_kept_fraction(&self) -> f64 {
        match *self {
            Perforation::None => 1.0,
            Perforation::TruncateBy(p) => 1.0 / p.max(1) as f64,
            Perforation::KeepEveryNth(p) => 1.0 / p.max(1) as f64,
            Perforation::SkipEveryNth(p) => {
                let p = p.max(2) as f64;
                (p - 1.0) / p
            }
            Perforation::KeepFraction(f) => f.clamp(0.0, 1.0),
        }
    }

    /// Indices of the iterations of `0..n` that survive perforation.
    pub fn filter_indices(&self, n: usize) -> Vec<usize> {
        (0..n).filter(|&i| self.keeps(i, n)).collect()
    }

    /// Whether this is precise execution.
    pub fn is_precise(&self) -> bool {
        matches!(self, Perforation::None)
    }
}

/// Floating-point precision of a kernel's core data type.
///
/// The paper's "lower precision" technique replaces `double` with `float`/`int`. The
/// kernels emulate this by quantizing intermediate values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// Full 64-bit floating point (precise).
    #[default]
    F64,
    /// 32-bit floating point.
    F32,
    /// 16-bit fixed point with 8 fractional bits (aggressive).
    Fixed16,
}

impl Precision {
    /// Quantizes a value to this precision.
    pub fn quantize(&self, x: f64) -> f64 {
        match self {
            Precision::F64 => x,
            Precision::F32 => x as f32 as f64,
            Precision::Fixed16 => {
                let scaled = (x * 256.0).round();
                let clamped = scaled.clamp(-32_768.0, 32_767.0);
                clamped / 256.0
            }
        }
    }

    /// Relative cost of an arithmetic operation at this precision, versus `F64`.
    ///
    /// Lower precision reduces both memory traffic and (in the original SIMD-friendly
    /// codes) execution time; the kernels use this factor when accounting work.
    pub fn op_cost(&self) -> f64 {
        match self {
            Precision::F64 => 1.0,
            Precision::F32 => 0.62,
            Precision::Fixed16 => 0.45,
        }
    }

    /// Whether this is the precise (F64) setting.
    pub fn is_precise(&self) -> bool {
        matches!(self, Precision::F64)
    }
}

/// Synchronization-elision model for iterative parallel kernels.
///
/// The original applications elide locks/barriers, letting threads read slightly stale
/// shared state. Sequentially, this is modelled by updating shared accumulators only every
/// `staleness`-th iteration (staleness 1 = precise), which both skips the "synchronization
/// work" and introduces the same kind of stale-read error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncElision {
    /// Number of iterations between shared-state refreshes; 1 means precise.
    pub staleness: u32,
}

impl Default for SyncElision {
    fn default() -> Self {
        Self { staleness: 1 }
    }
}

impl SyncElision {
    /// Precise synchronization (no elision).
    pub fn precise() -> Self {
        Self::default()
    }

    /// Elided synchronization with the given staleness (clamped to at least 1).
    pub fn with_staleness(staleness: u32) -> Self {
        Self {
            staleness: staleness.max(1),
        }
    }

    /// Whether iteration `i` refreshes shared state.
    pub fn refreshes(&self, i: usize) -> bool {
        i.is_multiple_of(self.staleness.max(1) as usize)
    }

    /// Fraction of synchronization work performed versus precise execution.
    pub fn sync_work_fraction(&self) -> f64 {
        1.0 / self.staleness.max(1) as f64
    }

    /// Whether this is precise synchronization.
    pub fn is_precise(&self) -> bool {
        self.staleness <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_keeps_everything() {
        let p = Perforation::None;
        assert_eq!(p.filter_indices(10).len(), 10);
        assert_eq!(p.expected_kept_fraction(), 1.0);
        assert!(p.is_precise());
    }

    #[test]
    fn truncate_keeps_prefix() {
        let p = Perforation::TruncateBy(4);
        let kept = p.filter_indices(100);
        assert_eq!(kept.len(), 25);
        assert_eq!(kept[0], 0);
        assert_eq!(*kept.last().unwrap(), 24);
    }

    #[test]
    fn keep_every_nth_spacing() {
        let p = Perforation::KeepEveryNth(3);
        let kept = p.filter_indices(9);
        assert_eq!(kept, vec![0, 3, 6]);
        assert!((p.expected_kept_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn skip_every_nth_spacing() {
        let p = Perforation::SkipEveryNth(3);
        let kept = p.filter_indices(9);
        assert_eq!(kept, vec![0, 1, 3, 4, 6, 7]);
        assert!((p.expected_kept_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn keep_fraction_bounds() {
        assert_eq!(Perforation::KeepFraction(0.0).filter_indices(50).len(), 0);
        assert_eq!(Perforation::KeepFraction(1.0).filter_indices(50).len(), 50);
        let kept = Perforation::KeepFraction(0.5).filter_indices(10_000).len();
        assert!((kept as f64 - 5_000.0).abs() < 500.0, "kept {kept}");
    }

    #[test]
    fn keep_fraction_is_deterministic() {
        let a = Perforation::KeepFraction(0.3).filter_indices(1000);
        let b = Perforation::KeepFraction(0.3).filter_indices(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn precision_quantization_error_ordering() {
        let x = std::f64::consts::PI * 10.0;
        let e32 = (Precision::F32.quantize(x) - x).abs();
        let e16 = (Precision::Fixed16.quantize(x) - x).abs();
        assert_eq!(Precision::F64.quantize(x), x);
        assert!(e32 <= e16);
        assert!(Precision::F64.op_cost() > Precision::F32.op_cost());
        assert!(Precision::F32.op_cost() > Precision::Fixed16.op_cost());
    }

    #[test]
    fn fixed16_saturates() {
        assert!((Precision::Fixed16.quantize(1e9) - 32_767.0 / 256.0).abs() < 1e-9);
        assert!((Precision::Fixed16.quantize(-1e9) + 32_768.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn sync_elision_refresh_pattern() {
        let e = SyncElision::with_staleness(4);
        assert!(e.refreshes(0));
        assert!(!e.refreshes(1));
        assert!(e.refreshes(4));
        assert!((e.sync_work_fraction() - 0.25).abs() < 1e-12);
        assert!(SyncElision::precise().is_precise());
        assert!(!e.is_precise());
    }

    #[test]
    fn sync_elision_staleness_zero_clamped() {
        let e = SyncElision::with_staleness(0);
        assert!(e.is_precise());
        assert!(e.refreshes(7));
    }

    proptest! {
        #[test]
        fn prop_kept_fraction_close_to_expected(
            n in 200usize..2000,
            p in 2u32..10,
        ) {
            for perf in [Perforation::TruncateBy(p), Perforation::KeepEveryNth(p), Perforation::SkipEveryNth(p)] {
                let kept = perf.filter_indices(n).len() as f64 / n as f64;
                prop_assert!((kept - perf.expected_kept_fraction()).abs() < 0.05);
            }
        }

        #[test]
        fn prop_quantize_idempotent(x in -1e4f64..1e4) {
            for p in [Precision::F64, Precision::F32, Precision::Fixed16] {
                let once = p.quantize(x);
                let twice = p.quantize(once);
                prop_assert_eq!(once, twice);
            }
        }
    }
}
