//! Kernel abstraction shared by all 24 approximate applications.
//!
//! A kernel is a self-contained computation with (a) a deterministic synthetic input
//! generated from a seed, (b) a set of approximation knobs (perforable loops, precision,
//! synchronization elision, input sampling), and (c) a quality metric that compares an
//! approximate output against the precise output of the same input.
//!
//! The design-space exploration (`pliant-explore`) drives kernels through their
//! [`ApproxKernel::candidate_configs`] and measures, for each configuration, the work
//! performed (a proxy for execution time) and the output inaccuracy — regenerating the
//! odd rows of the paper's Fig. 1.

use serde::{Deserialize, Serialize};

use crate::techniques::{Perforation, Precision, SyncElision};

/// Identifier of a perforable site (loop) inside a kernel.
pub type SiteId = u32;

/// A complete approximation configuration for one kernel run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ApproxConfig {
    /// Perforation applied to each perforable site. Sites not listed run precisely.
    pub perforations: Vec<(SiteId, Perforation)>,
    /// Precision of the kernel's core floating-point data.
    pub precision: Precision,
    /// Synchronization-elision setting for iterative shared-state updates.
    pub sync: SyncElision,
    /// Optional input sampling: keep this fraction of the input items (1.0 = all).
    pub input_sampling: Option<f64>,
    /// Human-readable label (e.g. "perf(site0,×4)+f32"); filled by config builders.
    pub label: String,
}

impl ApproxConfig {
    /// The precise configuration: no perforation, full precision, no elision, full input.
    pub fn precise() -> Self {
        Self {
            label: "precise".to_string(),
            ..Self::default()
        }
    }

    /// Whether this configuration performs any approximation at all.
    pub fn is_precise(&self) -> bool {
        self.perforations.iter().all(|(_, p)| p.is_precise())
            && self.precision.is_precise()
            && self.sync.is_precise()
            && self.input_sampling.is_none_or(|f| f >= 1.0)
    }

    /// Perforation configured for `site`, or [`Perforation::None`].
    pub fn perforation(&self, site: SiteId) -> Perforation {
        self.perforations
            .iter()
            .find(|(s, _)| *s == site)
            .map(|(_, p)| *p)
            .unwrap_or(Perforation::None)
    }

    /// Builder: sets the perforation of a site.
    pub fn with_perforation(mut self, site: SiteId, p: Perforation) -> Self {
        if let Some(entry) = self.perforations.iter_mut().find(|(s, _)| *s == site) {
            entry.1 = p;
        } else {
            self.perforations.push((site, p));
        }
        self
    }

    /// Builder: sets the precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Builder: sets synchronization elision.
    pub fn with_sync(mut self, sync: SyncElision) -> Self {
        self.sync = sync;
        self
    }

    /// Builder: sets input sampling fraction.
    pub fn with_input_sampling(mut self, fraction: f64) -> Self {
        self.input_sampling = Some(fraction.clamp(0.0, 1.0));
        self
    }

    /// Builder: sets the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Effective input fraction (1.0 when sampling is disabled).
    pub fn input_fraction(&self) -> f64 {
        self.input_sampling.unwrap_or(1.0).clamp(0.0, 1.0)
    }
}

/// Work accounting for one kernel run.
///
/// `ops` is a deterministic count of the kernel's dominant inner-loop operations and acts
/// as the execution-time proxy: the co-location simulator converts relative `ops` into
/// relative execution time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cost {
    /// Weighted operation count of the dominant loops.
    pub ops: f64,
    /// Bytes of synthetic data touched (proxy for memory traffic / LLC pressure).
    pub bytes_touched: f64,
}

impl Cost {
    /// Creates a cost record.
    pub fn new(ops: f64, bytes_touched: f64) -> Self {
        Self { ops, bytes_touched }
    }

    /// Adds another cost record.
    pub fn add(&mut self, other: Cost) {
        self.ops += other.ops;
        self.bytes_touched += other.bytes_touched;
    }
}

/// Output of a kernel run in a form that quality metrics can compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelOutput {
    /// A single scalar (e.g. final energy / cost / likelihood).
    Scalar(f64),
    /// A numeric vector (e.g. cluster centroids flattened, per-item scores).
    Vector(Vec<f64>),
    /// A discrete labelling (e.g. cluster assignment, classification labels).
    Labels(Vec<u32>),
}

impl KernelOutput {
    /// Relative error against a reference output, as a percentage in `[0, 100]`.
    ///
    /// * `Scalar`: relative difference `|a - b| / max(|b|, eps)`.
    /// * `Vector`: mean element-wise relative error (length mismatches are penalized by
    ///   treating missing elements as 100% error).
    /// * `Labels`: fraction of positions whose label differs.
    pub fn inaccuracy_vs(&self, reference: &KernelOutput) -> f64 {
        const EPS: f64 = 1e-9;
        let frac = match (self, reference) {
            (KernelOutput::Scalar(a), KernelOutput::Scalar(b)) => {
                ((a - b).abs() / b.abs().max(EPS)).min(1.0)
            }
            (KernelOutput::Vector(a), KernelOutput::Vector(b)) => {
                if b.is_empty() {
                    if a.is_empty() {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    let n = b.len();
                    let mut err = 0.0;
                    for i in 0..n {
                        match a.get(i) {
                            Some(x) => {
                                let denom = b[i].abs().max(EPS);
                                err += ((x - b[i]).abs() / denom).min(1.0);
                            }
                            None => err += 1.0,
                        }
                    }
                    err / n as f64
                }
            }
            (KernelOutput::Labels(a), KernelOutput::Labels(b)) => {
                if b.is_empty() {
                    if a.is_empty() {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    let n = b.len();
                    let diff = (0..n).filter(|&i| a.get(i) != Some(&b[i])).count();
                    diff as f64 / n as f64
                }
            }
            // Mismatched output kinds mean the approximation broke the output shape
            // entirely: report 100% inaccuracy.
            _ => 1.0,
        };
        (frac * 100.0).clamp(0.0, 100.0)
    }
}

/// Result of running a kernel under one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// Work performed.
    pub cost: Cost,
    /// Output produced.
    pub output: KernelOutput,
}

impl KernelRun {
    /// Creates a run record.
    pub fn new(cost: Cost, output: KernelOutput) -> Self {
        Self { cost, output }
    }
}

/// An approximate-computing application kernel.
///
/// Implementations are deterministic: the same seed and configuration always produce the
/// same cost and output.
pub trait ApproxKernel {
    /// Short lower-case name matching the paper's application name (e.g. `"canneal"`).
    fn name(&self) -> &'static str;

    /// Benchmark suite the application is drawn from.
    fn suite(&self) -> Suite;

    /// Candidate approximate configurations for design-space exploration, excluding the
    /// precise configuration. These correspond to the ACCEPT-style programmer hints the
    /// paper uses to prune the design space.
    fn candidate_configs(&self) -> Vec<ApproxConfig>;

    /// Runs the kernel under the given configuration.
    fn run(&self, config: &ApproxConfig) -> KernelRun;

    /// Runs the precise configuration (convenience wrapper).
    fn run_precise(&self) -> KernelRun {
        self.run(&ApproxConfig::precise())
    }
}

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// PARSEC benchmark suite.
    Parsec,
    /// SPLASH-2 benchmark suite.
    Splash2,
    /// MineBench data-mining suite.
    MineBench,
    /// BioPerf bioinformatics suite.
    BioPerf,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Parsec => "PARSEC",
            Suite::Splash2 => "SPLASH-2",
            Suite::MineBench => "MineBench",
            Suite::BioPerf => "BioPerf",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_config_is_precise() {
        let c = ApproxConfig::precise();
        assert!(c.is_precise());
        assert_eq!(c.input_fraction(), 1.0);
        assert_eq!(c.perforation(3), Perforation::None);
    }

    #[test]
    fn builder_composes_knobs() {
        let c = ApproxConfig::precise()
            .with_perforation(0, Perforation::KeepEveryNth(2))
            .with_perforation(0, Perforation::KeepEveryNth(4))
            .with_precision(Precision::F32)
            .with_sync(SyncElision::with_staleness(3))
            .with_input_sampling(0.5)
            .with_label("test");
        assert!(!c.is_precise());
        assert_eq!(c.perforation(0), Perforation::KeepEveryNth(4));
        assert_eq!(
            c.perforations.len(),
            1,
            "overwriting a site must not duplicate it"
        );
        assert_eq!(c.precision, Precision::F32);
        assert_eq!(c.input_fraction(), 0.5);
        assert_eq!(c.label, "test");
    }

    #[test]
    fn scalar_inaccuracy_is_relative() {
        let a = KernelOutput::Scalar(110.0);
        let b = KernelOutput::Scalar(100.0);
        assert!((a.inaccuracy_vs(&b) - 10.0).abs() < 1e-9);
        assert_eq!(b.inaccuracy_vs(&b), 0.0);
    }

    #[test]
    fn vector_inaccuracy_handles_length_mismatch() {
        let short = KernelOutput::Vector(vec![1.0]);
        let full = KernelOutput::Vector(vec![1.0, 2.0]);
        let err = short.inaccuracy_vs(&full);
        assert!((err - 50.0).abs() < 1e-9);
        assert_eq!(full.inaccuracy_vs(&full), 0.0);
    }

    #[test]
    fn labels_inaccuracy_is_mismatch_fraction() {
        let a = KernelOutput::Labels(vec![0, 1, 2, 3]);
        let b = KernelOutput::Labels(vec![0, 1, 0, 0]);
        assert!((a.inaccuracy_vs(&b) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_kinds_are_total_error() {
        let a = KernelOutput::Scalar(1.0);
        let b = KernelOutput::Labels(vec![1, 2]);
        assert_eq!(a.inaccuracy_vs(&b), 100.0);
    }

    #[test]
    fn inaccuracy_is_capped_at_100() {
        let a = KernelOutput::Scalar(1e12);
        let b = KernelOutput::Scalar(1.0);
        assert_eq!(a.inaccuracy_vs(&b), 100.0);
    }

    #[test]
    fn cost_addition() {
        let mut c = Cost::new(10.0, 100.0);
        c.add(Cost::new(5.0, 50.0));
        assert_eq!(c.ops, 15.0);
        assert_eq!(c.bytes_touched, 150.0);
    }

    #[test]
    fn suite_display_names() {
        assert_eq!(Suite::Parsec.to_string(), "PARSEC");
        assert_eq!(Suite::Splash2.to_string(), "SPLASH-2");
        assert_eq!(Suite::MineBench.to_string(), "MineBench");
        assert_eq!(Suite::BioPerf.to_string(), "BioPerf");
    }
}
