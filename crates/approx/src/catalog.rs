//! Calibrated per-application profiles used by the co-location simulator and the Pliant
//! runtime.
//!
//! The design-space exploration over the Rust kernels (Fig. 1, odd rows) produces relative
//! execution-time / inaccuracy curves, but the *co-location* experiments additionally need
//! each application's shared-resource pressure (LLC footprint, memory bandwidth, CPU
//! intensity), its nominal execution time on the paper's platform, and how each pareto
//! variant changes that pressure. Those quantities came from hardware measurements in the
//! paper; here they are encoded as a calibrated catalog whose qualitative characteristics
//! follow the paper's descriptions:
//!
//! * canneal is LLC- and compute-heavy and has 4 admissible variants; its variants shorten
//!   execution but only moderately reduce cache pressure (so memcached still needs cores).
//! * water_spatial's variants barely reduce execution time and it suffers the highest
//!   dynamic-instrumentation overhead.
//! * SNP has 5 variants that are especially effective at reducing LLC pressure
//!   (approximation alone satisfies memcached/MongoDB).
//! * raytrace has only 2 admissible variants; Bayesian and PLSA have 8 each.
//!
//! An [`AppProfile`] can also be constructed from measured kernel data via
//! [`AppProfile::with_variants`], which is what `pliant-explore` does when bridging the DSE
//! results into the runtime.

use serde::{Deserialize, Serialize};

use crate::kernel::Suite;

/// Identifier for each of the 24 approximate applications in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AppId {
    Fluidanimate,
    Canneal,
    Raytrace,
    WaterNsquared,
    WaterSpatial,
    Streamcluster,
    Bayesian,
    KMeans,
    Birch,
    Snp,
    GeneNet,
    FuzzyKMeans,
    Semphy,
    SvmRfe,
    Plsa,
    ScalParC,
    Hmmer,
    Blast,
    Fasta,
    Grappa,
    ClustalW,
    TCoffee,
    Glimmer,
    Ce,
}

impl AppId {
    /// All 24 applications, in the order the paper's Fig. 5 x-axis lists them.
    pub fn all() -> [AppId; 24] {
        use AppId::*;
        [
            Fluidanimate,
            Canneal,
            Raytrace,
            WaterNsquared,
            WaterSpatial,
            Streamcluster,
            Bayesian,
            KMeans,
            Birch,
            Snp,
            GeneNet,
            FuzzyKMeans,
            Semphy,
            SvmRfe,
            Plsa,
            ScalParC,
            Hmmer,
            Blast,
            Fasta,
            Grappa,
            ClustalW,
            TCoffee,
            Glimmer,
            Ce,
        ]
    }

    /// Lower-case application name used in figures and output rows.
    pub fn name(&self) -> &'static str {
        match self {
            AppId::Fluidanimate => "fluidanimate",
            AppId::Canneal => "canneal",
            AppId::Raytrace => "raytrace",
            AppId::WaterNsquared => "water_nsquared",
            AppId::WaterSpatial => "water_spatial",
            AppId::Streamcluster => "streamcluster",
            AppId::Bayesian => "bayesian",
            AppId::KMeans => "kmeans",
            AppId::Birch => "birch",
            AppId::Snp => "snp",
            AppId::GeneNet => "genenet",
            AppId::FuzzyKMeans => "fuzzy_kmeans",
            AppId::Semphy => "semphy",
            AppId::SvmRfe => "svm_rfe",
            AppId::Plsa => "plsa",
            AppId::ScalParC => "scalparc",
            AppId::Hmmer => "hmmer",
            AppId::Blast => "blast",
            AppId::Fasta => "fasta",
            AppId::Grappa => "grappa",
            AppId::ClustalW => "clustalw",
            AppId::TCoffee => "tcoffee",
            AppId::Glimmer => "glimmer",
            AppId::Ce => "ce",
        }
    }

    /// Benchmark suite the application is drawn from.
    pub fn suite(&self) -> Suite {
        match self {
            AppId::Fluidanimate | AppId::Canneal | AppId::Streamcluster => Suite::Parsec,
            AppId::Raytrace | AppId::WaterNsquared | AppId::WaterSpatial => Suite::Splash2,
            AppId::Bayesian
            | AppId::KMeans
            | AppId::Birch
            | AppId::Snp
            | AppId::GeneNet
            | AppId::FuzzyKMeans
            | AppId::Semphy
            | AppId::SvmRfe
            | AppId::Plsa
            | AppId::ScalParC => Suite::MineBench,
            AppId::Hmmer
            | AppId::Blast
            | AppId::Fasta
            | AppId::Grappa
            | AppId::ClustalW
            | AppId::TCoffee
            | AppId::Glimmer
            | AppId::Ce => Suite::BioPerf,
        }
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Shared-resource pressure an application exerts when running unconstrained (all of its
/// allotted cores, precise mode).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourcePressure {
    /// CPU intensity in `[0, 1]`: fraction of each allocated core it keeps busy.
    pub cpu_intensity: f64,
    /// Last-level-cache footprint in MiB.
    pub llc_mb: f64,
    /// Memory-bandwidth demand in GiB/s.
    pub membw_gbps: f64,
}

impl ResourcePressure {
    /// Creates a pressure descriptor.
    pub fn new(cpu_intensity: f64, llc_mb: f64, membw_gbps: f64) -> Self {
        Self {
            cpu_intensity: cpu_intensity.clamp(0.0, 1.0),
            llc_mb: llc_mb.max(0.0),
            membw_gbps: membw_gbps.max(0.0),
        }
    }

    /// Scales every pressure component by the given factors (used when a variant reduces
    /// memory traffic).
    pub fn scaled(&self, cpu: f64, llc: f64, membw: f64) -> Self {
        Self::new(
            self.cpu_intensity * cpu,
            self.llc_mb * llc,
            self.membw_gbps * membw,
        )
    }
}

/// One approximate variant of an application, ordered from closest-to-precise (index 0 in
/// `AppProfile::variants`) to most aggressive (last index).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariantProfile {
    /// Short label (e.g. "v3" or the knob description from the kernel DSE).
    pub label: String,
    /// Execution-time factor relative to precise execution on the same core count
    /// (`< 1.0` means faster).
    pub exec_time_factor: f64,
    /// Output-quality loss in percent when the whole run uses this variant.
    pub inaccuracy_pct: f64,
    /// Multiplier on the LLC footprint versus precise execution (`< 1.0` = less pressure).
    pub llc_factor: f64,
    /// Multiplier on memory-bandwidth demand versus precise execution.
    pub membw_factor: f64,
}

impl VariantProfile {
    /// Creates a variant profile.
    pub fn new(
        label: impl Into<String>,
        exec_time_factor: f64,
        inaccuracy_pct: f64,
        llc_factor: f64,
        membw_factor: f64,
    ) -> Self {
        Self {
            label: label.into(),
            exec_time_factor: exec_time_factor.max(0.05),
            inaccuracy_pct: inaccuracy_pct.max(0.0),
            llc_factor: llc_factor.clamp(0.05, 1.5),
            membw_factor: membw_factor.clamp(0.05, 1.5),
        }
    }
}

/// Complete runtime profile of one approximate application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Which application this profile describes.
    pub id: AppId,
    /// Execution time in seconds when running precisely with a fair core allocation and no
    /// co-runner interference (the "nominal execution time" the user supplies to Pliant).
    pub nominal_exec_time_s: f64,
    /// Shared-resource pressure in precise mode.
    pub pressure: ResourcePressure,
    /// Ordered approximate variants (closest-to-precise first).
    pub variants: Vec<VariantProfile>,
    /// Parallel efficiency exponent: speedup from `c` cores is `c^parallel_efficiency`.
    pub parallel_efficiency: f64,
    /// Mean execution-time overhead of running under the dynamic-recompilation tool
    /// (DynamoRIO in the paper), as a fraction (0.038 = 3.8%).
    pub instrumentation_overhead: f64,
    /// Maximum output-quality loss the user tolerates, in percent (5% in the paper).
    pub quality_threshold_pct: f64,
}

impl AppProfile {
    /// Number of approximate variants (excluding precise execution).
    pub fn variant_count(&self) -> usize {
        self.variants.len()
    }

    /// The variant at `index`, where `index == 0` is closest to precise. Returns `None`
    /// for out-of-range indices.
    pub fn variant(&self, index: usize) -> Option<&VariantProfile> {
        self.variants.get(index)
    }

    /// Index of the most aggressive variant, or `None` when the application has no
    /// admissible variants.
    pub fn most_approximate(&self) -> Option<usize> {
        if self.variants.is_empty() {
            None
        } else {
            Some(self.variants.len() - 1)
        }
    }

    /// Replaces the variant table (used when bridging measured DSE results into a profile).
    pub fn with_variants(mut self, variants: Vec<VariantProfile>) -> Self {
        self.variants = variants;
        self
    }

    /// Resource pressure when running the given variant (`None` = precise).
    pub fn pressure_at(&self, variant: Option<usize>) -> ResourcePressure {
        match variant.and_then(|v| self.variants.get(v)) {
            None => self.pressure,
            Some(v) => self.pressure.scaled(1.0, v.llc_factor, v.membw_factor),
        }
    }

    /// Execution-time factor of the given variant (`None`/out-of-range = 1.0, precise).
    pub fn exec_factor_at(&self, variant: Option<usize>) -> f64 {
        variant
            .and_then(|v| self.variants.get(v))
            .map_or(1.0, |v| v.exec_time_factor)
    }

    /// Inaccuracy in percent of the given variant (`None` = 0.0).
    pub fn inaccuracy_at(&self, variant: Option<usize>) -> f64 {
        variant
            .and_then(|v| self.variants.get(v))
            .map_or(0.0, |v| v.inaccuracy_pct)
    }
}

/// Builds a variant table from `(exec_time_factor, inaccuracy_pct, llc_factor,
/// membw_factor)` tuples, labelling them `v1..vN`.
fn variants(table: &[(f64, f64, f64, f64)]) -> Vec<VariantProfile> {
    table
        .iter()
        .enumerate()
        .map(|(i, &(t, q, l, b))| VariantProfile::new(format!("v{}", i + 1), t, q, l, b))
        .collect()
}

/// The catalog of all 24 calibrated application profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    profiles: Vec<AppProfile>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl Catalog {
    /// Builds a catalog from an explicit list of profiles (used to bridge design-space
    /// exploration results, or to pin an application to a specific variant subset in the
    /// figure harnesses).
    pub fn from_profiles(profiles: Vec<AppProfile>) -> Self {
        Self { profiles }
    }

    /// Builds the paper-calibrated catalog.
    pub fn paper_calibrated() -> Self {
        let mk = |id: AppId,
                  exec_s: f64,
                  pressure: ResourcePressure,
                  table: &[(f64, f64, f64, f64)],
                  par_eff: f64,
                  overhead: f64| AppProfile {
            id,
            nominal_exec_time_s: exec_s,
            pressure,
            variants: variants(table),
            parallel_efficiency: par_eff,
            instrumentation_overhead: overhead,
            quality_threshold_pct: 5.0,
        };

        let profiles = vec![
            // fluidanimate: compute-heavy, moderate cache, 4 variants.
            mk(
                AppId::Fluidanimate,
                38.0,
                ResourcePressure::new(0.95, 14.0, 9.0),
                &[
                    (0.93, 0.4, 0.95, 0.92),
                    (0.82, 1.1, 0.85, 0.80),
                    (0.68, 2.3, 0.72, 0.66),
                    (0.55, 3.9, 0.60, 0.52),
                ],
                0.88,
                0.032,
            ),
            // canneal: LLC- and compute-heavy; 4 variants; variants shorten execution but
            // only moderately reduce cache pressure.
            mk(
                AppId::Canneal,
                42.0,
                ResourcePressure::new(0.90, 30.0, 16.0),
                &[
                    (0.90, 1.0, 0.97, 0.93),
                    (0.78, 2.2, 0.93, 0.85),
                    (0.64, 3.6, 0.88, 0.76),
                    (0.52, 5.0, 0.84, 0.68),
                ],
                0.85,
                0.041,
            ),
            // raytrace: only 2 admissible variants; phase-dependent compute/LLC pressure.
            mk(
                AppId::Raytrace,
                26.0,
                ResourcePressure::new(0.92, 15.0, 8.0),
                &[(0.80, 0.05, 0.88, 0.84), (0.58, 0.1, 0.70, 0.62)],
                0.90,
                0.035,
            ),
            // water_nsquared: compute-bound; approximation shortens runtime but does not
            // substantially cut shared-resource pressure.
            mk(
                AppId::WaterNsquared,
                35.0,
                ResourcePressure::new(0.97, 8.0, 6.0),
                &[
                    (0.88, 0.8, 0.98, 0.95),
                    (0.72, 1.7, 0.95, 0.90),
                    (0.55, 3.4, 0.92, 0.85),
                ],
                0.92,
                0.030,
            ),
            // water_spatial: variants barely reduce execution time (near-vertical Fig. 1
            // line) and instrumentation overhead is the highest of all applications.
            mk(
                AppId::WaterSpatial,
                33.0,
                ResourcePressure::new(0.94, 16.0, 11.0),
                &[
                    (0.985, 0.6, 0.97, 0.95),
                    (0.97, 1.6, 0.94, 0.91),
                    (0.955, 3.0, 0.91, 0.88),
                    (0.94, 5.0, 0.89, 0.85),
                ],
                0.90,
                0.089,
            ),
            // streamcluster: memory-bandwidth heavy; 5 variants.
            mk(
                AppId::Streamcluster,
                40.0,
                ResourcePressure::new(0.88, 26.0, 22.0),
                &[
                    (0.92, 0.7, 0.90, 0.88),
                    (0.80, 1.5, 0.80, 0.74),
                    (0.68, 2.5, 0.70, 0.62),
                    (0.57, 3.8, 0.62, 0.52),
                    (0.46, 4.9, 0.55, 0.44),
                ],
                0.86,
                0.037,
            ),
            // Bayesian: very rich design space (8 pareto variants).
            mk(
                AppId::Bayesian,
                52.0,
                ResourcePressure::new(0.85, 18.0, 14.0),
                &[
                    (0.95, 0.3, 0.96, 0.94),
                    (0.88, 0.6, 0.91, 0.88),
                    (0.81, 1.0, 0.86, 0.81),
                    (0.74, 1.5, 0.81, 0.75),
                    (0.67, 2.1, 0.76, 0.68),
                    (0.60, 2.8, 0.71, 0.61),
                    (0.52, 3.7, 0.65, 0.54),
                    (0.44, 4.8, 0.58, 0.46),
                ],
                0.87,
                0.033,
            ),
            // K-means: iterative; approximation alone often not enough with NGINX.
            mk(
                AppId::KMeans,
                36.0,
                ResourcePressure::new(0.92, 22.0, 19.0),
                &[
                    (0.90, 0.9, 0.93, 0.90),
                    (0.78, 1.7, 0.86, 0.80),
                    (0.64, 2.6, 0.78, 0.69),
                    (0.53, 3.4, 0.70, 0.58),
                ],
                0.89,
                0.034,
            ),
            // BIRCH: streaming inserts, cache-resident CF tree.
            mk(
                AppId::Birch,
                31.0,
                ResourcePressure::new(0.82, 20.0, 15.0),
                &[
                    (0.91, 0.9, 0.88, 0.86),
                    (0.79, 1.8, 0.78, 0.72),
                    (0.66, 2.8, 0.68, 0.60),
                    (0.56, 3.8, 0.60, 0.50),
                ],
                0.84,
                0.036,
            ),
            // SNP: 5 variants; synchronization elision + perforation are unusually
            // effective at cutting LLC pressure.
            mk(
                AppId::Snp,
                44.0,
                ResourcePressure::new(0.86, 24.0, 17.0),
                &[
                    (0.93, 0.5, 0.80, 0.82),
                    (0.85, 1.1, 0.63, 0.68),
                    (0.76, 1.8, 0.48, 0.54),
                    (0.68, 2.7, 0.36, 0.42),
                    (0.60, 3.8, 0.26, 0.32),
                ],
                0.86,
                0.031,
            ),
            // GeneNet: pairwise correlation; moderate pressure, 4 variants.
            mk(
                AppId::GeneNet,
                39.0,
                ResourcePressure::new(0.84, 16.0, 12.0),
                &[
                    (0.92, 0.8, 0.90, 0.89),
                    (0.80, 1.6, 0.82, 0.78),
                    (0.67, 2.5, 0.73, 0.66),
                    (0.55, 3.4, 0.64, 0.55),
                ],
                0.85,
                0.032,
            ),
            // Fuzzy K-means: like kmeans but heavier per-point arithmetic.
            mk(
                AppId::FuzzyKMeans,
                41.0,
                ResourcePressure::new(0.93, 23.0, 20.0),
                &[
                    (0.91, 0.6, 0.92, 0.90),
                    (0.80, 1.2, 0.85, 0.80),
                    (0.67, 2.0, 0.76, 0.68),
                    (0.56, 2.9, 0.68, 0.57),
                    (0.47, 4.1, 0.60, 0.47),
                ],
                0.88,
                0.034,
            ),
            // SEMPHY: phylogenetic EM; approximation alone often insufficient with NGINX.
            mk(
                AppId::Semphy,
                48.0,
                ResourcePressure::new(0.90, 19.0, 13.0),
                &[
                    (0.92, 0.7, 0.94, 0.92),
                    (0.82, 1.5, 0.89, 0.85),
                    (0.71, 2.4, 0.83, 0.77),
                    (0.61, 3.3, 0.77, 0.69),
                    (0.52, 4.3, 0.71, 0.61),
                ],
                0.87,
                0.038,
            ),
            // SVM-RFE: repeated training rounds; 4 variants.
            mk(
                AppId::SvmRfe,
                45.0,
                ResourcePressure::new(0.89, 17.0, 15.0),
                &[
                    (0.90, 0.9, 0.92, 0.89),
                    (0.78, 1.9, 0.84, 0.78),
                    (0.66, 2.9, 0.75, 0.66),
                    (0.56, 3.9, 0.67, 0.56),
                ],
                0.86,
                0.035,
            ),
            // PLSA: 8 variants, rich space; EM over a large matrix (bandwidth-heavy), and
            // one of the workloads that needs core reclamation at high load.
            mk(
                AppId::Plsa,
                50.0,
                ResourcePressure::new(0.88, 25.0, 21.0),
                &[
                    (0.96, 0.2, 0.97, 0.95),
                    (0.90, 0.5, 0.93, 0.90),
                    (0.84, 0.9, 0.88, 0.84),
                    (0.78, 1.3, 0.84, 0.78),
                    (0.72, 1.8, 0.79, 0.72),
                    (0.66, 2.4, 0.74, 0.66),
                    (0.59, 3.1, 0.69, 0.59),
                    (0.52, 4.0, 0.63, 0.52),
                ],
                0.87,
                0.036,
            ),
            // ScalParC: decision-tree growth; 4 variants.
            mk(
                AppId::ScalParC,
                34.0,
                ResourcePressure::new(0.87, 21.0, 18.0),
                &[
                    (0.92, 0.5, 0.90, 0.88),
                    (0.81, 1.1, 0.82, 0.77),
                    (0.70, 1.9, 0.73, 0.66),
                    (0.61, 2.8, 0.66, 0.56),
                ],
                0.85,
                0.033,
            ),
            // Hmmer: Viterbi scoring, compute-bound; 4 variants.
            mk(
                AppId::Hmmer,
                37.0,
                ResourcePressure::new(0.94, 15.0, 9.0),
                &[
                    (0.91, 0.6, 0.93, 0.91),
                    (0.80, 1.3, 0.86, 0.82),
                    (0.69, 2.2, 0.79, 0.72),
                    (0.59, 3.1, 0.72, 0.62),
                ],
                0.90,
                0.030,
            ),
            // Blast: seed-and-extend; cache-friendly seeds, 4 variants.
            mk(
                AppId::Blast,
                32.0,
                ResourcePressure::new(0.90, 15.0, 11.0),
                &[
                    (0.90, 0.7, 0.90, 0.88),
                    (0.79, 1.5, 0.82, 0.77),
                    (0.68, 2.4, 0.74, 0.66),
                    (0.58, 3.1, 0.67, 0.56),
                ],
                0.88,
                0.031,
            ),
            // Fasta: banded alignment; 4 variants.
            mk(
                AppId::Fasta,
                30.0,
                ResourcePressure::new(0.91, 14.0, 10.0),
                &[
                    (0.92, 0.5, 0.91, 0.89),
                    (0.82, 1.1, 0.84, 0.79),
                    (0.72, 1.9, 0.76, 0.68),
                    (0.63, 2.6, 0.69, 0.58),
                ],
                0.89,
                0.029,
            ),
            // GRAPPA: combinatorial search; 4 variants.
            mk(
                AppId::Grappa,
                43.0,
                ResourcePressure::new(0.93, 11.0, 8.0),
                &[
                    (0.93, 0.9, 0.95, 0.93),
                    (0.83, 1.9, 0.90, 0.86),
                    (0.73, 3.0, 0.84, 0.78),
                    (0.63, 4.4, 0.78, 0.70),
                ],
                0.88,
                0.033,
            ),
            // ClustalW: pairwise alignment matrix; 4 variants.
            mk(
                AppId::ClustalW,
                46.0,
                ResourcePressure::new(0.89, 18.0, 13.0),
                &[
                    (0.90, 0.4, 0.89, 0.87),
                    (0.78, 0.9, 0.80, 0.75),
                    (0.66, 1.6, 0.71, 0.63),
                    (0.55, 2.1, 0.63, 0.52),
                ],
                0.87,
                0.034,
            ),
            // T-Coffee: consistency extension; 4 variants.
            mk(
                AppId::TCoffee,
                49.0,
                ResourcePressure::new(0.88, 19.0, 14.0),
                &[
                    (0.91, 0.6, 0.90, 0.88),
                    (0.80, 1.3, 0.82, 0.77),
                    (0.69, 2.2, 0.73, 0.65),
                    (0.58, 3.1, 0.65, 0.54),
                ],
                0.86,
                0.037,
            ),
            // Glimmer: IMM scoring; 4 variants.
            mk(
                AppId::Glimmer,
                29.0,
                ResourcePressure::new(0.85, 16.0, 12.0),
                &[
                    (0.92, 0.8, 0.88, 0.86),
                    (0.81, 1.8, 0.79, 0.74),
                    (0.70, 2.9, 0.70, 0.62),
                    (0.60, 4.0, 0.62, 0.52),
                ],
                0.85,
                0.032,
            ),
            // CE: structural alignment; 4 variants.
            mk(
                AppId::Ce,
                35.0,
                ResourcePressure::new(0.92, 12.0, 9.0),
                &[
                    (0.91, 0.5, 0.92, 0.90),
                    (0.81, 1.1, 0.85, 0.80),
                    (0.70, 1.8, 0.77, 0.69),
                    (0.61, 2.3, 0.70, 0.60),
                ],
                0.89,
                0.030,
            ),
        ];
        Self { profiles }
    }

    /// Profile of an application.
    ///
    /// # Panics
    ///
    /// Never panics: every `AppId` has a profile in the default catalog. (If a custom
    /// catalog is constructed without one, this returns `None`.)
    pub fn profile(&self, id: AppId) -> Option<&AppProfile> {
        self.profiles.iter().find(|p| p.id == id)
    }

    /// All profiles, in Fig. 5 order.
    pub fn profiles(&self) -> &[AppProfile] {
        &self.profiles
    }

    /// Number of profiles in the catalog.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_24_applications() {
        let cat = Catalog::default();
        assert_eq!(cat.len(), 24);
        for app in AppId::all() {
            assert!(cat.profile(app).is_some(), "{app} missing from catalog");
        }
    }

    #[test]
    fn paper_variant_counts_are_respected() {
        let cat = Catalog::default();
        assert_eq!(cat.profile(AppId::Canneal).unwrap().variant_count(), 4);
        assert_eq!(cat.profile(AppId::Raytrace).unwrap().variant_count(), 2);
        assert_eq!(cat.profile(AppId::Bayesian).unwrap().variant_count(), 8);
        assert_eq!(cat.profile(AppId::Plsa).unwrap().variant_count(), 8);
        assert_eq!(cat.profile(AppId::Snp).unwrap().variant_count(), 5);
    }

    #[test]
    fn variants_are_ordered_most_precise_first() {
        let cat = Catalog::default();
        for p in cat.profiles() {
            for w in p.variants.windows(2) {
                assert!(
                    w[0].exec_time_factor >= w[1].exec_time_factor,
                    "{}: execution-time factors must decrease toward more aggressive variants",
                    p.id
                );
                assert!(
                    w[0].inaccuracy_pct <= w[1].inaccuracy_pct,
                    "{}: inaccuracy must increase toward more aggressive variants",
                    p.id
                );
            }
        }
    }

    #[test]
    fn inaccuracy_stays_within_the_5pct_threshold() {
        let cat = Catalog::default();
        for p in cat.profiles() {
            for v in &p.variants {
                assert!(
                    v.inaccuracy_pct <= p.quality_threshold_pct + 1e-9,
                    "{} variant {} exceeds the quality threshold",
                    p.id,
                    v.label
                );
            }
        }
    }

    #[test]
    fn water_spatial_variants_barely_change_execution_time() {
        let cat = Catalog::default();
        let ws = cat.profile(AppId::WaterSpatial).unwrap();
        let most = ws.variants.last().unwrap();
        assert!(
            most.exec_time_factor > 0.9,
            "water_spatial must stay near-vertical in Fig. 1"
        );
        assert!(
            ws.instrumentation_overhead > 0.08,
            "water_spatial has the worst DynamoRIO overhead"
        );
    }

    #[test]
    fn snp_variants_cut_llc_pressure_sharply() {
        let cat = Catalog::default();
        let snp = cat.profile(AppId::Snp).unwrap();
        let most = snp.variants.last().unwrap();
        assert!(
            most.llc_factor < 0.4,
            "SNP's most aggressive variant must slash LLC pressure"
        );
    }

    #[test]
    fn pressure_at_and_exec_factor_at_behave() {
        let cat = Catalog::default();
        let canneal = cat.profile(AppId::Canneal).unwrap();
        let precise = canneal.pressure_at(None);
        let most = canneal.pressure_at(canneal.most_approximate());
        assert!(most.llc_mb < precise.llc_mb);
        assert_eq!(canneal.exec_factor_at(None), 1.0);
        assert!(canneal.exec_factor_at(Some(0)) < 1.0);
        assert_eq!(canneal.inaccuracy_at(None), 0.0);
        assert!(canneal.inaccuracy_at(canneal.most_approximate()) > 0.0);
        // Out-of-range variants behave like precise.
        assert_eq!(canneal.exec_factor_at(Some(99)), 1.0);
    }

    #[test]
    fn instrumentation_overhead_matches_paper_statistics() {
        let cat = Catalog::default();
        let mean: f64 = cat
            .profiles()
            .iter()
            .map(|p| p.instrumentation_overhead)
            .sum::<f64>()
            / cat.len() as f64;
        let max = cat
            .profiles()
            .iter()
            .map(|p| p.instrumentation_overhead)
            .fold(0.0f64, f64::max);
        assert!(
            (mean - 0.038).abs() < 0.01,
            "mean overhead {mean} should be ~3.8%"
        );
        assert!(
            (max - 0.089).abs() < 0.005,
            "max overhead {max} should be ~8.9%"
        );
    }

    #[test]
    fn app_display_and_suite() {
        assert_eq!(AppId::WaterNsquared.to_string(), "water_nsquared");
        assert_eq!(AppId::Canneal.suite(), Suite::Parsec);
        assert_eq!(AppId::Raytrace.suite(), Suite::Splash2);
        assert_eq!(AppId::Plsa.suite(), Suite::MineBench);
        assert_eq!(AppId::Hmmer.suite(), Suite::BioPerf);
        assert_eq!(AppId::all().len(), 24);
    }
}
