//! SPLASH-2-derived kernels: water_nsquared, water_spatial, raytrace.

pub mod raytrace;
pub mod water_nsquared;
pub mod water_spatial;
