//! water_spatial — cell-list (spatial decomposition) molecular-dynamics simulation.
//!
//! Same physics as water_nsquared but neighbour interactions are restricted to adjacent
//! spatial cells, so the interaction count is already small. The paper observes that
//! water_spatial's approximate variants barely reduce execution time (its Fig. 1 points lie
//! on an almost vertical line) — perforating the short cell-neighbour loops removes little
//! work while still perturbing the output. The kernel reproduces that behaviour naturally.
//! Knobs: perforate cell-interaction loop (site 0), perforate time steps (site 1), elide
//! the cell-boundary synchronization, reduce precision.

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision, SyncElision};

/// Perforable site: per-cell neighbour interactions.
pub const SITE_CELL_INTERACTIONS: u32 = 0;
/// Perforable site: simulation time steps.
pub const SITE_TIME_STEPS: u32 = 1;

/// Cell-list molecular-dynamics kernel.
#[derive(Debug, Clone)]
pub struct WaterSpatialKernel {
    molecules: PointCloud,
    steps: usize,
    cell_size: f64,
}

impl WaterSpatialKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_molecules: usize, steps: usize) -> Self {
        Self {
            molecules: PointCloud::gaussian_mixture(seed, n_molecules, 3, 5),
            steps,
            cell_size: 2.5,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 400, 12)
    }

    fn cell_of(&self, p: &[f64]) -> (i64, i64, i64) {
        (
            (p[0] / self.cell_size).floor() as i64,
            (p[1] / self.cell_size).floor() as i64,
            (p[2] / self.cell_size).floor() as i64,
        )
    }

    fn simulate(&self, config: &ApproxConfig) -> (f64, Cost) {
        use std::collections::BTreeMap;
        let n = self.molecules.len();
        let dims = self.molecules.dims;
        let inter_perf = config.perforation(SITE_CELL_INTERACTIONS);
        let step_perf = config.perforation(SITE_TIME_STEPS);
        let precision = config.precision;
        let sync = config.sync;
        let mut cost = Cost::default();

        let mut pos = self.molecules.data.clone();
        let mut vel = vec![0.0f64; n * dims];
        let mut energy = 0.0f64;
        let mut forces = vec![0.0f64; n * dims];

        for step in 0..self.steps {
            if !step_perf.keeps(step, self.steps) {
                continue;
            }
            // Build cell lists (this work is not perforable — it is the fixed overhead that
            // makes water_spatial's execution time insensitive to approximation).
            // BTreeMap keeps cell iteration order deterministic, so perforation decisions
            // and floating-point accumulation order are reproducible run-to-run.
            let mut cells: BTreeMap<(i64, i64, i64), Vec<usize>> = BTreeMap::new();
            for i in 0..n {
                let c = self.cell_of(&pos[i * dims..i * dims + dims]);
                cells.entry(c).or_default().push(i);
                cost.ops += 6.0;
                cost.bytes_touched += 24.0;
            }
            // With elided cell-boundary synchronization, forces are only recomputed on
            // refresh steps; other steps integrate with the stale force field (the racy
            // shared-state analogue), which also skips the interaction work.
            if !sync.refreshes(step) {
                for i in 0..n {
                    for d in 0..dims {
                        vel[i * dims + d] =
                            precision.quantize(vel[i * dims + d] + forces[i * dims + d] * 1e-4);
                        pos[i * dims + d] =
                            precision.quantize(pos[i * dims + d] + vel[i * dims + d] * 0.01);
                        cost.ops += 4.0 * precision.op_cost();
                    }
                }
                continue;
            }
            forces = vec![0.0f64; n * dims];
            let mut step_energy = 0.0f64;
            for (&(cx, cy, cz), members) in &cells {
                // Gather neighbours from the 27 adjacent cells.
                let mut neighbours: Vec<usize> = Vec::new();
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        for dz in -1..=1 {
                            if let Some(v) = cells.get(&(cx + dx, cy + dy, cz + dz)) {
                                neighbours.extend_from_slice(v);
                            }
                        }
                    }
                }
                cost.ops += 27.0;
                for &i in members {
                    let mut k = 0usize;
                    for &j in &neighbours {
                        if j <= i {
                            continue;
                        }
                        let keep = inter_perf.keeps(k, neighbours.len());
                        k += 1;
                        if !keep {
                            continue;
                        }
                        let mut d2 = 0.0;
                        for d in 0..dims {
                            let diff = pos[i * dims + d] - pos[j * dims + d];
                            d2 += diff * diff;
                        }
                        let d2 = d2.max(0.25);
                        if d2 > self.cell_size * self.cell_size {
                            continue;
                        }
                        let inv6 = 1.0 / (d2 * d2 * d2);
                        let inv12 = inv6 * inv6;
                        step_energy += precision.quantize(4.0 * (inv12 - inv6));
                        let fmag = precision.quantize(24.0 * (2.0 * inv12 - inv6) / d2);
                        for d in 0..dims {
                            let diff = pos[i * dims + d] - pos[j * dims + d];
                            forces[i * dims + d] += fmag * diff;
                            forces[j * dims + d] -= fmag * diff;
                        }
                        cost.ops += (10 + 4 * dims) as f64 * precision.op_cost();
                        cost.bytes_touched += (4 * dims) as f64 * 8.0;
                    }
                }
            }
            for i in 0..n {
                for d in 0..dims {
                    vel[i * dims + d] =
                        precision.quantize(vel[i * dims + d] + forces[i * dims + d] * 1e-4);
                    pos[i * dims + d] =
                        precision.quantize(pos[i * dims + d] + vel[i * dims + d] * 0.01);
                    cost.ops += 4.0 * precision.op_cost();
                }
            }
            energy = step_energy;
        }
        (energy, cost)
    }
}

impl ApproxKernel for WaterSpatialKernel {
    fn name(&self) -> &'static str {
        "water_spatial"
    }

    fn suite(&self) -> Suite {
        Suite::Splash2
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_CELL_INTERACTIONS, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("cells-skip1of{p}")),
            );
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_CELL_INTERACTIONS, Perforation::KeepEveryNth(p))
                    .with_label(format!("cells-keep1of{p}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_sync(SyncElision::with_staleness(2))
                .with_label("elide-sync-stale2"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (energy, cost) = self.simulate(config);
        KernelRun::new(cost, KernelOutput::Scalar(energy.abs() + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_run_is_finite() {
        let run = WaterSpatialKernel::small(8).run_precise();
        match run.output {
            KernelOutput::Scalar(e) => assert!(e.is_finite()),
            _ => panic!("unexpected output"),
        }
        assert!(run.cost.ops > 0.0);
    }

    #[test]
    fn perforation_saves_less_work_than_in_nsquared() {
        // The defining characteristic of water_spatial in the paper: approximation barely
        // reduces execution time because the cell-list overhead dominates.
        let k = WaterSpatialKernel::small(8);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_CELL_INTERACTIONS, Perforation::KeepEveryNth(4)),
        );
        let ratio = approx.cost.ops / precise.cost.ops;
        assert!(
            ratio > 0.2,
            "cell-list overhead should keep ratio meaningful: {ratio}"
        );
        assert!(ratio < 1.0);
    }

    #[test]
    fn deterministic_output() {
        let k = WaterSpatialKernel::small(8);
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }

    #[test]
    fn all_candidates_reduce_or_preserve_work() {
        let k = WaterSpatialKernel::small(8);
        let precise = k.run_precise();
        for cfg in k.candidate_configs() {
            let run = k.run(&cfg);
            // Synchronization elision perturbs the particle trajectory, which can shift a
            // few particles across cell boundaries and add a handful of neighbour pairs;
            // allow a small tolerance for that second-order effect.
            assert!(
                run.cost.ops <= precise.cost.ops * 1.10,
                "{} increased work beyond tolerance",
                cfg.label
            );
        }
    }
}
