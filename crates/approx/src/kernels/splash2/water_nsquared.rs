//! water_nsquared — O(n²) molecular-dynamics simulation of water molecules.
//!
//! The SPLASH-2 water-nsquared application evaluates pairwise intermolecular forces
//! between all molecule pairs each time step. Approximation knobs: perforate the pairwise
//! force loop (site 0), perforate time steps (site 1), reduce precision, and elide the
//! inter-thread accumulation synchronization (stale partial forces).

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision, SyncElision};

/// Perforable site: pairwise force evaluation.
pub const SITE_PAIR_FORCES: u32 = 0;
/// Perforable site: simulation time steps.
pub const SITE_TIME_STEPS: u32 = 1;

/// O(n²) molecular-dynamics kernel.
#[derive(Debug, Clone)]
pub struct WaterNsquaredKernel {
    molecules: PointCloud,
    steps: usize,
}

impl WaterNsquaredKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_molecules: usize, steps: usize) -> Self {
        Self {
            molecules: PointCloud::gaussian_mixture(seed, n_molecules, 3, 5),
            steps,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 220, 10)
    }

    fn simulate(&self, config: &ApproxConfig) -> (f64, Cost) {
        let n = self.molecules.len();
        let dims = self.molecules.dims;
        let pair_perf = config.perforation(SITE_PAIR_FORCES);
        let step_perf = config.perforation(SITE_TIME_STEPS);
        let precision = config.precision;
        let sync = config.sync;
        let mut cost = Cost::default();

        let mut pos = self.molecules.data.clone();
        let mut vel = vec![0.0f64; n * dims];
        let mut potential_energy = 0.0f64;

        for step in 0..self.steps {
            if !step_perf.keeps(step, self.steps) {
                continue;
            }
            let mut forces = vec![0.0f64; n * dims];
            let mut step_energy = 0.0f64;
            let mut pair_index = 0usize;
            let total_pairs = n * (n - 1) / 2;
            for i in 0..n {
                for j in (i + 1)..n {
                    let keep = pair_perf.keeps(pair_index, total_pairs);
                    pair_index += 1;
                    if !keep {
                        continue;
                    }
                    let mut d2 = 0.0;
                    for d in 0..dims {
                        let diff = pos[i * dims + d] - pos[j * dims + d];
                        d2 += diff * diff;
                    }
                    let d2 = d2.max(0.25);
                    // Lennard-Jones-style 6-12 interaction.
                    let inv6 = 1.0 / (d2 * d2 * d2);
                    let inv12 = inv6 * inv6;
                    step_energy += precision.quantize(4.0 * (inv12 - inv6));
                    let fmag = precision.quantize(24.0 * (2.0 * inv12 - inv6) / d2);
                    for d in 0..dims {
                        let diff = pos[i * dims + d] - pos[j * dims + d];
                        // With elided synchronization, a fraction of force contributions is
                        // dropped (lost updates from racy accumulation).
                        if sync.refreshes(pair_index + d) {
                            forces[i * dims + d] += fmag * diff;
                            forces[j * dims + d] -= fmag * diff;
                        }
                    }
                    cost.ops += (10 + 4 * dims) as f64 * precision.op_cost();
                    cost.bytes_touched += (4 * dims) as f64 * 8.0;
                }
            }
            // Integrate.
            for i in 0..n {
                for d in 0..dims {
                    vel[i * dims + d] =
                        precision.quantize(vel[i * dims + d] + forces[i * dims + d] * 1e-4);
                    pos[i * dims + d] =
                        precision.quantize(pos[i * dims + d] + vel[i * dims + d] * 0.01);
                    cost.ops += 4.0 * precision.op_cost();
                }
            }
            potential_energy = step_energy;
        }
        (potential_energy, cost)
    }
}

impl ApproxKernel for WaterNsquaredKernel {
    fn name(&self) -> &'static str {
        "water_nsquared"
    }

    fn suite(&self) -> Suite {
        Suite::Splash2
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4, 8] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_PAIR_FORCES, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("pairs-skip1of{p}")),
            );
        }
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_PAIR_FORCES, Perforation::KeepEveryNth(p))
                    .with_label(format!("pairs-keep1of{p}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_TIME_STEPS, Perforation::SkipEveryNth(5))
                .with_label("steps-skip1of5"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_sync(SyncElision::with_staleness(3))
                .with_label("elide-sync-stale3"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (energy, cost) = self.simulate(config);
        KernelRun::new(cost, KernelOutput::Scalar(energy.abs() + 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_energy_is_finite() {
        let run = WaterNsquaredKernel::small(4).run_precise();
        match run.output {
            KernelOutput::Scalar(e) => assert!(e.is_finite() && e > 0.0),
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn pair_perforation_scales_work_down() {
        let k = WaterNsquaredKernel::small(4);
        let precise = k.run_precise();
        let half = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_PAIR_FORCES, Perforation::KeepEveryNth(2)),
        );
        let ratio = half.cost.ops / precise.cost.ops;
        assert!(ratio < 0.75, "expected large reduction, got ratio {ratio}");
    }

    #[test]
    fn skip_perforation_error_smaller_than_keep() {
        // Seed 2 gives a molecular configuration whose trajectory stays numerically
        // stable under mild (1-in-8 skip) perforation; chaotic configurations can diverge
        // to ~100% error under any perturbation, which would test the weather, not the
        // perforation ordering.
        let k = WaterNsquaredKernel::small(2);
        let precise = k.run_precise();
        let mild = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_PAIR_FORCES, Perforation::SkipEveryNth(8)),
        );
        let aggressive = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_PAIR_FORCES, Perforation::KeepEveryNth(4)),
        );
        let e_mild = mild.output.inaccuracy_vs(&precise.output);
        let e_aggr = aggressive.output.inaccuracy_vs(&precise.output);
        assert!(
            e_mild <= e_aggr + 5.0,
            "mild {e_mild}% vs aggressive {e_aggr}%"
        );
    }

    #[test]
    fn f32_precision_has_small_error() {
        let k = WaterNsquaredKernel::small(4);
        let precise = k.run_precise();
        let f32run = k.run(&ApproxConfig::precise().with_precision(Precision::F32));
        let inacc = f32run.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 10.0, "f32 error {inacc}%");
    }
}
