//! raytrace — recursive ray tracing of a procedural sphere scene.
//!
//! The SPLASH-2 raytrace application renders a scene by tracing one (or more) rays per
//! pixel. The natural perforation target is the per-pixel sampling loop: skipping pixels
//! and filling them from a neighbour, or capping the reflection depth. The paper notes
//! raytrace has only two admissible approximate variants under the 5% quality threshold;
//! the candidate set here is similarly narrow.

use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};
use pliant_telemetry::rng::seeded_rng;
use rand::Rng;

/// Perforable site: the per-pixel ray loop.
pub const SITE_PIXELS: u32 = 0;
/// Perforable site: the reflection-bounce loop.
pub const SITE_BOUNCES: u32 = 1;

#[derive(Debug, Clone, Copy)]
struct Sphere {
    centre: [f64; 3],
    radius: f64,
    reflectivity: f64,
    brightness: f64,
}

/// Ray-tracing kernel over a procedural sphere scene.
#[derive(Debug, Clone)]
pub struct RaytraceKernel {
    spheres: Vec<Sphere>,
    width: usize,
    height: usize,
    max_bounces: usize,
}

impl RaytraceKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, width: usize, height: usize, n_spheres: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let spheres = (0..n_spheres)
            .map(|_| Sphere {
                centre: [
                    rng.gen_range(-4.0..4.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(4.0..12.0),
                ],
                radius: rng.gen_range(0.5..1.6),
                reflectivity: rng.gen_range(0.1..0.7),
                brightness: rng.gen_range(0.2..1.0),
            })
            .collect();
        Self {
            spheres,
            width,
            height,
            max_bounces: 3,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 48, 36, 12)
    }

    fn intersect(&self, origin: [f64; 3], dir: [f64; 3]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in self.spheres.iter().enumerate() {
            let oc = [
                origin[0] - s.centre[0],
                origin[1] - s.centre[1],
                origin[2] - s.centre[2],
            ];
            let b = oc[0] * dir[0] + oc[1] * dir[1] + oc[2] * dir[2];
            let c = oc[0] * oc[0] + oc[1] * oc[1] + oc[2] * oc[2] - s.radius * s.radius;
            let disc = b * b - c;
            if disc > 0.0 {
                let t = -b - disc.sqrt();
                if t > 1e-3 && best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
        }
        best
    }

    fn trace(&self, config: &ApproxConfig, cost: &mut Cost) -> Vec<f64> {
        let pixel_perf = config.perforation(SITE_PIXELS);
        let bounce_perf = config.perforation(SITE_BOUNCES);
        let precision = config.precision;
        let total = self.width * self.height;
        let mut image = vec![0.0f64; total];
        let mut last_value = 0.5;
        for p in 0..total {
            if !pixel_perf.keeps(p, total) {
                // Fill skipped pixels from the previously-traced pixel (neighbour reuse).
                image[p] = last_value;
                cost.ops += 1.0;
                continue;
            }
            let x = (p % self.width) as f64 / self.width as f64 - 0.5;
            let y = (p / self.width) as f64 / self.height as f64 - 0.5;
            let mut origin = [0.0, 0.0, 0.0];
            let norm = (x * x + y * y + 1.0).sqrt();
            let mut dir = [x / norm, y / norm, 1.0 / norm];
            let mut colour = 0.0;
            let mut attenuation = 1.0;
            for bounce in 0..self.max_bounces {
                if !bounce_perf.keeps(bounce, self.max_bounces) {
                    break;
                }
                cost.ops += self.spheres.len() as f64 * 12.0 * precision.op_cost();
                cost.bytes_touched += self.spheres.len() as f64 * 40.0;
                match self.intersect(origin, dir) {
                    None => {
                        colour += attenuation * 0.1; // background
                        break;
                    }
                    Some((si, t)) => {
                        let s = self.spheres[si];
                        colour += attenuation * s.brightness;
                        attenuation *= s.reflectivity;
                        // Move origin to hit point and reflect around the surface normal.
                        for d in 0..3 {
                            origin[d] += dir[d] * t;
                        }
                        let mut normal = [
                            origin[0] - s.centre[0],
                            origin[1] - s.centre[1],
                            origin[2] - s.centre[2],
                        ];
                        let nl =
                            (normal[0] * normal[0] + normal[1] * normal[1] + normal[2] * normal[2])
                                .sqrt()
                                .max(1e-9);
                        for nd in &mut normal {
                            *nd /= nl;
                        }
                        let dot = dir[0] * normal[0] + dir[1] * normal[1] + dir[2] * normal[2];
                        for d in 0..3 {
                            dir[d] -= 2.0 * dot * normal[d];
                        }
                        cost.ops += 30.0 * precision.op_cost();
                    }
                }
            }
            let v = precision.quantize(colour.min(4.0));
            image[p] = v;
            last_value = v;
        }
        image
    }
}

impl ApproxKernel for RaytraceKernel {
    fn name(&self) -> &'static str {
        "raytrace"
    }

    fn suite(&self) -> Suite {
        Suite::Splash2
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        vec![
            ApproxConfig::precise()
                .with_perforation(SITE_PIXELS, Perforation::SkipEveryNth(8))
                .with_label("pixels-skip1of8"),
            ApproxConfig::precise()
                .with_perforation(SITE_PIXELS, Perforation::SkipEveryNth(4))
                .with_label("pixels-skip1of4"),
            ApproxConfig::precise()
                .with_perforation(SITE_PIXELS, Perforation::SkipEveryNth(2))
                .with_label("pixels-skip1of2"),
            ApproxConfig::precise()
                .with_perforation(SITE_BOUNCES, Perforation::TruncateBy(2))
                .with_label("bounces-truncate2"),
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        ]
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let mut cost = Cost::default();
        let image = self.trace(config, &mut cost);
        KernelRun::new(cost, KernelOutput::Vector(image))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_image_has_structure() {
        let k = RaytraceKernel::small(6);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(img) => {
                assert_eq!(img.len(), 48 * 36);
                let distinct = img.iter().filter(|v| **v > 0.15).count();
                assert!(distinct > 0, "some pixels must hit spheres");
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn pixel_perforation_reduces_work_proportionally() {
        let k = RaytraceKernel::small(6);
        let precise = k.run_precise();
        let half = k.run(
            &ApproxConfig::precise().with_perforation(SITE_PIXELS, Perforation::SkipEveryNth(2)),
        );
        let ratio = half.cost.ops / precise.cost.ops;
        assert!(ratio < 0.75 && ratio > 0.3, "ratio {ratio}");
    }

    #[test]
    fn mild_perforation_keeps_quality_reasonable() {
        let k = RaytraceKernel::small(6);
        let precise = k.run_precise();
        let mild = k.run(
            &ApproxConfig::precise().with_perforation(SITE_PIXELS, Perforation::SkipEveryNth(8)),
        );
        let inacc = mild.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 25.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn bounce_truncation_is_cheaper() {
        let k = RaytraceKernel::small(6);
        let precise = k.run_precise();
        let truncated = k.run(
            &ApproxConfig::precise().with_perforation(SITE_BOUNCES, Perforation::TruncateBy(2)),
        );
        assert!(truncated.cost.ops < precise.cost.ops);
    }
}
