//! fluidanimate — smoothed-particle-hydrodynamics (SPH) fluid simulation.
//!
//! The PARSEC fluidanimate benchmark advances a particle fluid through time steps; most of
//! the work is the pairwise density/force computation between particles in neighbouring
//! grid cells, protected by per-cell locks in the parallel original. Approximation knobs:
//! perforate time steps (site 0), perforate the neighbour-interaction loop (site 1), elide
//! the per-cell synchronization (stale neighbour densities), and reduce precision.

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision, SyncElision};

/// Perforable site: simulation time steps.
pub const SITE_TIME_STEPS: u32 = 0;
/// Perforable site: neighbour-interaction loop.
pub const SITE_NEIGHBOURS: u32 = 1;

/// SPH fluid-simulation kernel.
#[derive(Debug, Clone)]
pub struct FluidanimateKernel {
    particles: PointCloud,
    steps: usize,
    interaction_radius: f64,
}

impl FluidanimateKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_particles: usize, steps: usize) -> Self {
        Self {
            particles: PointCloud::gaussian_mixture(seed, n_particles, 3, 6),
            steps,
            interaction_radius: 2.0,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 280, 8)
    }

    fn simulate(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.particles.len();
        let dims = self.particles.dims;
        let steps_perf = config.perforation(SITE_TIME_STEPS);
        let neigh_perf = config.perforation(SITE_NEIGHBOURS);
        let precision = config.precision;
        let sync = config.sync;
        let mut cost = Cost::default();

        let mut positions: Vec<f64> = self.particles.data.clone();
        let mut velocities: Vec<f64> = vec![0.0; n * dims];
        let mut densities: Vec<f64> = vec![1.0; n];
        let r2 = self.interaction_radius * self.interaction_radius;

        for step in 0..self.steps {
            if !steps_perf.keeps(step, self.steps) {
                continue;
            }
            // Density pass. With elided synchronization, densities are only refreshed on
            // some steps and stale values are reused (mimicking racy reads).
            if sync.refreshes(step) {
                for i in 0..n {
                    let mut rho = 1.0;
                    let mut considered = 0usize;
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        if !neigh_perf.keeps(considered, n - 1) {
                            considered += 1;
                            continue;
                        }
                        considered += 1;
                        let mut d2 = 0.0;
                        for d in 0..dims {
                            let diff = positions[i * dims + d] - positions[j * dims + d];
                            d2 += diff * diff;
                        }
                        cost.ops += (3 * dims) as f64 * precision.op_cost();
                        cost.bytes_touched += (2 * dims) as f64 * 8.0;
                        if d2 < r2 {
                            let w = (r2 - d2) / r2;
                            rho += w * w * w;
                            cost.ops += 4.0 * precision.op_cost();
                        }
                    }
                    densities[i] = precision.quantize(rho);
                }
            } else {
                cost.ops += n as f64; // bookkeeping only
            }
            // Force + integration pass (pressure gradient toward less dense regions).
            for i in 0..n {
                for d in 0..dims {
                    let grad = (densities[i] - 1.0) * 0.01;
                    velocities[i * dims + d] =
                        precision.quantize(velocities[i * dims + d] * 0.98 - grad);
                    positions[i * dims + d] = precision
                        .quantize(positions[i * dims + d] + velocities[i * dims + d] * 0.05);
                    cost.ops += 6.0 * precision.op_cost();
                    cost.bytes_touched += 24.0;
                }
            }
        }
        (densities, cost)
    }
}

impl ApproxKernel for FluidanimateKernel {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_NEIGHBOURS, Perforation::KeepEveryNth(p))
                    .with_label(format!("neigh-keep1of{p}")),
            );
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_TIME_STEPS, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("steps-skip1of{p}")),
            );
        }
        for s in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_sync(SyncElision::with_staleness(s))
                    .with_label(format!("elide-sync-stale{s}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_NEIGHBOURS, Perforation::KeepEveryNth(2))
                .with_sync(SyncElision::with_staleness(2))
                .with_label("neigh-keep1of2+stale2"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (densities, cost) = self.simulate(config);
        KernelRun::new(cost, KernelOutput::Vector(densities))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_densities_are_positive() {
        let k = FluidanimateKernel::small(2);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(d) => {
                assert_eq!(d.len(), 280);
                assert!(d.iter().all(|x| *x >= 1.0));
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn neighbour_perforation_halves_interaction_work() {
        let k = FluidanimateKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_NEIGHBOURS, Perforation::KeepEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.75);
    }

    #[test]
    fn sync_elision_reduces_work_with_bounded_error() {
        let k = FluidanimateKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_sync(SyncElision::with_staleness(4)));
        assert!(approx.cost.ops < precise.cost.ops);
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 50.0, "stale densities caused {inacc}% error");
    }

    #[test]
    fn step_perforation_changes_output_mildly() {
        let k = FluidanimateKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_TIME_STEPS, Perforation::SkipEveryNth(4)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc > 0.0);
        assert!(inacc < 60.0);
    }
}
