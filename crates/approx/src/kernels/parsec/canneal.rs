//! canneal — simulated-annealing netlist placement.
//!
//! The PARSEC canneal benchmark minimizes total wire length of a chip netlist by randomly
//! swapping element placements under a cooling schedule. The paper notes that perforating
//! annealing iterations is particularly effective because iterations that do not improve
//! the solution contribute no useful work. This kernel reproduces that structure: a
//! synthetic netlist, a swap-based annealing loop (perforable, site 0), an inner cost
//! re-evaluation loop over incident nets (perforable, site 1), and reduced-precision cost
//! accumulation.

use rand::Rng;

use pliant_telemetry::rng::seeded_rng;

use crate::data::Netlist;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: the outer annealing (swap) loop.
pub const SITE_ANNEAL_LOOP: u32 = 0;
/// Perforable site: the incident-net cost evaluation loop.
pub const SITE_NET_EVAL: u32 = 1;

/// Simulated-annealing placement kernel.
#[derive(Debug, Clone)]
pub struct CannealKernel {
    netlist: Netlist,
    seed: u64,
    sweeps: usize,
    start_temperature: f64,
}

impl CannealKernel {
    /// Creates a kernel instance with an explicit problem size.
    pub fn new(seed: u64, elements: usize, edges_per_element: usize, sweeps: usize) -> Self {
        Self {
            netlist: Netlist::synthetic(seed, elements, edges_per_element),
            seed,
            sweeps,
            start_temperature: 8.0,
        }
    }

    /// Small instance suitable for unit tests and fast design-space exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 256, 4, 24)
    }

    fn anneal(&self, config: &ApproxConfig) -> (Vec<u32>, Cost) {
        let n = self.netlist.elements;
        let mut rng = seeded_rng(self.seed.wrapping_add(17));
        let mut placement: Vec<u32> = (0..n as u32).collect();
        let outer = config.perforation(SITE_ANNEAL_LOOP);
        let inner = config.perforation(SITE_NET_EVAL);
        let precision = config.precision;
        let mut cost = Cost::default();

        // Pre-compute incident nets per element for delta evaluation.
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (ni, &(a, b)) in self.netlist.nets.iter().enumerate() {
            incident[a as usize].push(ni);
            incident[b as usize].push(ni);
        }

        let total_moves = self.sweeps * n;
        let mut temperature = self.start_temperature;
        for step in 0..total_moves {
            if step % n == 0 && step > 0 {
                temperature *= 0.85;
            }
            if !outer.keeps(step, total_moves) {
                continue;
            }
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            // Delta cost of swapping placements of a and b, over their incident nets
            // (inner perforable loop).
            let mut delta = 0.0f64;
            let eval_one =
                |placement: &[u32], elem: usize, nets: &[usize], cost: &mut Cost| -> f64 {
                    let mut sum = 0.0;
                    for (k, &ni) in nets.iter().enumerate() {
                        if !inner.keeps(k, nets.len()) {
                            continue;
                        }
                        let (x, y) = self.netlist.nets[ni];
                        let _ = elem;
                        let w = self.netlist.width as i64;
                        let px = placement[x as usize] as i64;
                        let py = placement[y as usize] as i64;
                        sum += ((px % w - py % w).abs() + (px / w - py / w).abs()) as f64;
                        cost.ops += 6.0 * precision.op_cost();
                        cost.bytes_touched += 24.0;
                    }
                    precision.quantize(sum)
                };
            let before = eval_one(&placement, a, &incident[a], &mut cost)
                + eval_one(&placement, b, &incident[b], &mut cost);
            placement.swap(a, b);
            let after = eval_one(&placement, a, &incident[a], &mut cost)
                + eval_one(&placement, b, &incident[b], &mut cost);
            delta += after - before;

            let accept = delta < 0.0 || {
                let u: f64 = rng.gen_range(0.0f64..1.0);
                u < (-delta / temperature.max(1e-6)).exp()
            };
            if !accept {
                placement.swap(a, b);
            }
            cost.ops += 8.0;
        }
        (placement, cost)
    }
}

impl ApproxKernel for CannealKernel {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4, 6, 8] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ANNEAL_LOOP, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("anneal-skip1of{p}")),
            );
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ANNEAL_LOOP, Perforation::KeepEveryNth(p))
                    .with_label(format!("anneal-keep1of{p}")),
            );
        }
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_NET_EVAL, Perforation::KeepEveryNth(p))
                    .with_label(format!("neteval-keep1of{p}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_ANNEAL_LOOP, Perforation::KeepEveryNth(2))
                .with_precision(Precision::F32)
                .with_label("anneal-keep1of2+f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (placement, cost) = self.anneal(config);
        // Output quality is the achieved wire length (lower is better); inaccuracy is the
        // relative regression versus the precise run's wire length.
        let wl = self.netlist.wire_length(&placement);
        KernelRun::new(cost, KernelOutput::Scalar(wl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_run_improves_over_initial_placement() {
        let k = CannealKernel::small(3);
        let initial: Vec<u32> = (0..k.netlist.elements as u32).collect();
        let initial_wl = k.netlist.wire_length(&initial);
        let run = k.run_precise();
        match run.output {
            KernelOutput::Scalar(final_wl) => {
                assert!(
                    final_wl <= initial_wl,
                    "annealing should not worsen placement"
                );
            }
            _ => panic!("unexpected output kind"),
        }
        assert!(run.cost.ops > 0.0);
    }

    #[test]
    fn perforation_reduces_work() {
        let k = CannealKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_ANNEAL_LOOP, Perforation::KeepEveryNth(4)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.6);
    }

    #[test]
    fn inaccuracy_of_mild_perforation_is_bounded() {
        let k = CannealKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_ANNEAL_LOOP, Perforation::SkipEveryNth(8)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(
            inacc < 30.0,
            "mild perforation produced {inacc}% inaccuracy"
        );
    }

    #[test]
    fn candidate_configs_are_all_approximate() {
        let k = CannealKernel::small(1);
        for cfg in k.candidate_configs() {
            assert!(!cfg.is_precise(), "candidate {:?} is precise", cfg.label);
        }
    }
}
