//! streamcluster — online k-median clustering of a point stream.
//!
//! The PARSEC streamcluster benchmark clusters a stream of points by opening facilities
//! (medians) and repeatedly trying to improve the solution with local search ("gain"
//! evaluation). Approximation knobs: perforate the local-search passes (site 0), perforate
//! the per-point gain evaluation (site 1), sample the input stream, and reduce precision.

use pliant_telemetry::rng::seeded_rng;
use rand::Rng;

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: local-search improvement passes.
pub const SITE_SEARCH_PASSES: u32 = 0;
/// Perforable site: per-point gain evaluation.
pub const SITE_GAIN_EVAL: u32 = 1;

/// Online k-median clustering kernel.
#[derive(Debug, Clone)]
pub struct StreamclusterKernel {
    points: PointCloud,
    target_centers: usize,
    search_passes: usize,
    seed: u64,
}

impl StreamclusterKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(
        seed: u64,
        n_points: usize,
        dims: usize,
        target_centers: usize,
        passes: usize,
    ) -> Self {
        Self {
            points: PointCloud::gaussian_mixture(seed, n_points, dims, target_centers),
            target_centers,
            search_passes: passes,
            seed,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 600, 4, 8, 6)
    }

    fn cluster(&self, config: &ApproxConfig) -> (f64, Cost) {
        let n = self.points.len();
        let keep_fraction = config.input_fraction();
        let sample = Perforation::KeepFraction(keep_fraction);
        let active: Vec<usize> = (0..n).filter(|&i| sample.keeps(i, n)).collect();
        let passes_perf = config.perforation(SITE_SEARCH_PASSES);
        let gain_perf = config.perforation(SITE_GAIN_EVAL);
        let precision = config.precision;
        let mut cost = Cost::default();
        let mut rng = seeded_rng(self.seed.wrapping_add(41));

        // Start with the first `k` active points as centers.
        let k = self.target_centers.min(active.len().max(1));
        let mut centers: Vec<Vec<f64>> = active
            .iter()
            .take(k)
            .map(|&i| self.points.point(i).to_vec())
            .collect();
        if centers.is_empty() {
            centers.push(vec![0.0; self.points.dims]);
        }

        let assignment_cost = |centers: &[Vec<f64>], cost: &mut Cost| -> f64 {
            let mut total = 0.0;
            for &i in &active {
                let mut best = f64::INFINITY;
                for c in centers {
                    let d = self.points.dist2(i, c);
                    if d < best {
                        best = d;
                    }
                    cost.ops += self.points.dims as f64 * precision.op_cost();
                    cost.bytes_touched += self.points.dims as f64 * 8.0;
                }
                total += precision.quantize(best.sqrt());
            }
            total
        };

        let mut best_cost = assignment_cost(&centers, &mut cost);
        for pass in 0..self.search_passes {
            if !passes_perf.keeps(pass, self.search_passes) {
                continue;
            }
            // Local search: try to replace each center with a random active point.
            for (ci, _) in centers.clone().iter().enumerate() {
                if !gain_perf.keeps(ci, centers.len()) {
                    continue;
                }
                let candidate = active[rng.gen_range(0..active.len())];
                let old =
                    std::mem::replace(&mut centers[ci], self.points.point(candidate).to_vec());
                let new_cost = assignment_cost(&centers, &mut cost);
                if new_cost < best_cost {
                    best_cost = new_cost;
                } else {
                    centers[ci] = old;
                }
            }
        }
        (best_cost, cost)
    }
}

impl ApproxKernel for StreamclusterKernel {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn suite(&self) -> Suite {
        Suite::Parsec
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4, 6] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_SEARCH_PASSES, Perforation::KeepEveryNth(p))
                    .with_label(format!("passes-keep1of{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_GAIN_EVAL, Perforation::KeepEveryNth(p))
                    .with_label(format!("gain-keep1of{p}")),
            );
        }
        for f in [0.75, 0.5, 0.35] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_SEARCH_PASSES, Perforation::KeepEveryNth(2))
                .with_input_sampling(0.5)
                .with_label("passes-keep1of2+sample50%"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (objective, cost) = self.cluster(config);
        KernelRun::new(cost, KernelOutput::Scalar(objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_objective_is_positive_and_finite() {
        let k = StreamclusterKernel::small(5);
        let run = k.run_precise();
        match run.output {
            KernelOutput::Scalar(obj) => assert!(obj > 0.0 && obj.is_finite()),
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn sampling_reduces_bytes_touched() {
        let k = StreamclusterKernel::small(5);
        let precise = k.run_precise();
        let sampled = k.run(&ApproxConfig::precise().with_input_sampling(0.4));
        assert!(sampled.cost.bytes_touched < precise.cost.bytes_touched * 0.7);
    }

    #[test]
    fn perforating_passes_reduces_ops() {
        let k = StreamclusterKernel::small(5);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_SEARCH_PASSES, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn deterministic_across_runs() {
        let k = StreamclusterKernel::small(9);
        let a = k.run_precise();
        let b = k.run_precise();
        assert_eq!(a.output, b.output);
    }
}
