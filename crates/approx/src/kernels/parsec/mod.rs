//! PARSEC-derived kernels: canneal, streamcluster, fluidanimate.

pub mod canneal;
pub mod fluidanimate;
pub mod streamcluster;
