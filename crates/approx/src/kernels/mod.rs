//! Simplified but genuine Rust implementations of the paper's 24 approximate applications.
//!
//! Each kernel module implements [`crate::kernel::ApproxKernel`]: it generates a
//! deterministic synthetic input, exposes the approximation knobs its original counterpart
//! exposes (perforable loops, precision, synchronization elision, input sampling), and
//! measures output quality against its own precise execution. The design-space exploration
//! in `pliant-explore` uses these kernels to regenerate the execution-time-vs-inaccuracy
//! trade-off curves of Fig. 1.
//!
//! Kernels are grouped by benchmark suite:
//!
//! * [`parsec`] — fluidanimate, canneal, streamcluster
//! * [`splash2`] — water_nsquared, water_spatial, raytrace
//! * [`minebench`] — Naive Bayesian, K-means, Fuzzy K-means, BIRCH, SNP, GeneNet, SEMPHY,
//!   SVM-RFE, PLSA, ScalParC
//! * [`bioperf`] — Hmmer, Blast, Fasta, GRAPPA, ClustalW, T-Coffee, Glimmer, CE

pub mod bioperf;
pub mod minebench;
pub mod parsec;
pub mod splash2;

use crate::catalog::AppId;
use crate::kernel::ApproxKernel;

/// Constructs the default ("small input") kernel instance for an application.
///
/// The `seed` controls synthetic input generation; the same seed always produces the same
/// input and therefore the same precise output.
pub fn kernel_for(app: AppId, seed: u64) -> Box<dyn ApproxKernel> {
    match app {
        AppId::Fluidanimate => Box::new(parsec::fluidanimate::FluidanimateKernel::small(seed)),
        AppId::Canneal => Box::new(parsec::canneal::CannealKernel::small(seed)),
        AppId::Streamcluster => Box::new(parsec::streamcluster::StreamclusterKernel::small(seed)),
        AppId::WaterNsquared => Box::new(splash2::water_nsquared::WaterNsquaredKernel::small(seed)),
        AppId::WaterSpatial => Box::new(splash2::water_spatial::WaterSpatialKernel::small(seed)),
        AppId::Raytrace => Box::new(splash2::raytrace::RaytraceKernel::small(seed)),
        AppId::Bayesian => Box::new(minebench::bayesian::BayesianKernel::small(seed)),
        AppId::KMeans => Box::new(minebench::kmeans::KMeansKernel::small(seed)),
        AppId::FuzzyKMeans => Box::new(minebench::fuzzy_kmeans::FuzzyKMeansKernel::small(seed)),
        AppId::Birch => Box::new(minebench::birch::BirchKernel::small(seed)),
        AppId::Snp => Box::new(minebench::snp::SnpKernel::small(seed)),
        AppId::GeneNet => Box::new(minebench::genenet::GeneNetKernel::small(seed)),
        AppId::Semphy => Box::new(minebench::semphy::SemphyKernel::small(seed)),
        AppId::SvmRfe => Box::new(minebench::svm_rfe::SvmRfeKernel::small(seed)),
        AppId::Plsa => Box::new(minebench::plsa::PlsaKernel::small(seed)),
        AppId::ScalParC => Box::new(minebench::scalparc::ScalParCKernel::small(seed)),
        AppId::Hmmer => Box::new(bioperf::hmmer::HmmerKernel::small(seed)),
        AppId::Blast => Box::new(bioperf::blast::BlastKernel::small(seed)),
        AppId::Fasta => Box::new(bioperf::fasta::FastaKernel::small(seed)),
        AppId::Grappa => Box::new(bioperf::grappa::GrappaKernel::small(seed)),
        AppId::ClustalW => Box::new(bioperf::clustalw::ClustalWKernel::small(seed)),
        AppId::TCoffee => Box::new(bioperf::tcoffee::TCoffeeKernel::small(seed)),
        AppId::Glimmer => Box::new(bioperf::glimmer::GlimmerKernel::small(seed)),
        AppId::Ce => Box::new(bioperf::ce::CeKernel::small(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ApproxConfig;

    #[test]
    fn every_app_has_a_kernel() {
        for app in AppId::all() {
            let k = kernel_for(app, 7);
            assert!(!k.name().is_empty());
            assert!(
                !k.candidate_configs().is_empty(),
                "{} must expose at least one approximate configuration",
                k.name()
            );
        }
    }

    #[test]
    fn kernels_are_deterministic_in_seed() {
        for app in [AppId::KMeans, AppId::Canneal, AppId::Hmmer] {
            let a = kernel_for(app, 5).run(&ApproxConfig::precise());
            let b = kernel_for(app, 5).run(&ApproxConfig::precise());
            assert_eq!(
                a.output, b.output,
                "{app:?} precise output must be deterministic"
            );
            assert_eq!(a.cost, b.cost);
        }
    }
}
