//! GRAPPA — gene-order phylogeny via breakpoint distance minimization.
//!
//! GRAPPA reconstructs phylogenies from gene-order (signed permutation) data by searching
//! for median genomes that minimize breakpoint distance. The kernel computes pairwise
//! breakpoint distances between synthetic genomes and runs a hill-climbing median search.
//! Knobs: perforate the median-search candidate loop (site 0), perforate the pairwise
//! distance loop (site 1), sample genomes, reduce precision (coarser distance accounting).

use pliant_telemetry::rng::seeded_rng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: median-search candidate loop.
pub const SITE_MEDIAN_SEARCH: u32 = 0;
/// Perforable site: pairwise breakpoint-distance loop.
pub const SITE_PAIR_DISTANCES: u32 = 1;

/// Gene-order phylogeny kernel.
#[derive(Debug, Clone)]
pub struct GrappaKernel {
    genomes: Vec<Vec<u32>>,
    genes: usize,
    search_steps: usize,
    seed: u64,
}

impl GrappaKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, genomes: usize, genes: usize, search_steps: usize) -> Self {
        let mut rng = seeded_rng(seed);
        let ancestor: Vec<u32> = (0..genes as u32).collect();
        let genomes = (0..genomes)
            .map(|_| {
                let mut g = ancestor.clone();
                // Apply a handful of random reversals to derive each genome.
                for _ in 0..rng.gen_range(2..6) {
                    let i = rng.gen_range(0..genes);
                    let j = rng.gen_range(0..genes);
                    let (lo, hi) = (i.min(j), i.max(j));
                    g[lo..=hi].reverse();
                }
                g
            })
            .collect();
        Self {
            genomes,
            genes,
            search_steps,
            seed,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 12, 60, 300)
    }

    fn breakpoint_distance(a: &[u32], b: &[u32], precision: Precision, cost: &mut Cost) -> f64 {
        // Number of adjacencies in `a` that are not adjacencies in `b`.
        let n = a.len();
        let mut pos_in_b = vec![0usize; n];
        for (i, &g) in b.iter().enumerate() {
            pos_in_b[g as usize] = i;
        }
        let mut breakpoints = 0.0;
        for w in a.windows(2) {
            let pa = pos_in_b[w[0] as usize] as i64;
            let pb = pos_in_b[w[1] as usize] as i64;
            if (pa - pb).abs() != 1 {
                breakpoints += 1.0;
            }
            cost.ops += 4.0 * precision.op_cost();
            cost.bytes_touched += 16.0;
        }
        precision.quantize(breakpoints)
    }

    fn search(&self, config: &ApproxConfig) -> (f64, Cost) {
        let search_perf = config.perforation(SITE_MEDIAN_SEARCH);
        let dist_perf = config.perforation(SITE_PAIR_DISTANCES);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();
        let mut rng = seeded_rng(self.seed.wrapping_add(7));

        let active: Vec<&Vec<u32>> = self
            .genomes
            .iter()
            .enumerate()
            .filter(|(i, _)| sample.keeps(*i, self.genomes.len()))
            .map(|(_, g)| g)
            .collect();
        let score_median = |median: &[u32], cost: &mut Cost| -> f64 {
            let mut total = 0.0;
            for (i, g) in active.iter().enumerate() {
                if !dist_perf.keeps(i, active.len()) {
                    continue;
                }
                total += Self::breakpoint_distance(median, g, precision, cost);
            }
            total
        };

        // Hill climbing from the identity ordering: propose reversals, keep improvements.
        let mut median: Vec<u32> = (0..self.genes as u32).collect();
        median.shuffle(&mut rng);
        let mut best = score_median(&median, &mut cost);
        for step in 0..self.search_steps {
            if !search_perf.keeps(step, self.search_steps) {
                continue;
            }
            let i = rng.gen_range(0..self.genes);
            let j = rng.gen_range(0..self.genes);
            let (lo, hi) = (i.min(j), i.max(j));
            median[lo..=hi].reverse();
            let s = score_median(&median, &mut cost);
            if s <= best {
                best = s;
            } else {
                median[lo..=hi].reverse();
            }
            cost.ops += 4.0;
        }
        (best + 1.0, cost)
    }
}

impl ApproxKernel for GrappaKernel {
    fn name(&self) -> &'static str {
        "grappa"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_MEDIAN_SEARCH, Perforation::KeepEveryNth(p))
                    .with_label(format!("search-keep1of{p}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_PAIR_DISTANCES, Perforation::SkipEveryNth(3))
                .with_label("dist-skip1of3"),
        );
        for f in [0.75, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("genomes{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (score, cost) = self.search(config);
        KernelRun::new(cost, KernelOutput::Scalar(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_search_produces_positive_score() {
        let run = GrappaKernel::small(17).run_precise();
        match run.output {
            KernelOutput::Scalar(s) => assert!(s > 0.0 && s.is_finite()),
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn search_perforation_reduces_work() {
        let k = GrappaKernel::small(17);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_MEDIAN_SEARCH, Perforation::KeepEveryNth(4)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.6);
    }

    #[test]
    fn genome_sampling_reduces_work() {
        let k = GrappaKernel::small(17);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.5));
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn determinism() {
        let k = GrappaKernel::small(17);
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }
}
