//! CE (Combinatorial Extension) — protein structural alignment.
//!
//! CE aligns two protein 3-D structures by finding compatible aligned fragment pairs
//! (AFPs) — short backbone fragments whose internal distance matrices agree — and chaining
//! them. Knobs: perforate the fragment-pair enumeration (site 0), perforate the intra-
//! fragment distance comparison (site 1), sample residues, reduce precision.

use pliant_telemetry::rng::{sample_standard_normal, seeded_rng};

use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: aligned-fragment-pair enumeration.
pub const SITE_FRAGMENT_PAIRS: u32 = 0;
/// Perforable site: intra-fragment distance comparisons.
pub const SITE_DISTANCES: u32 = 1;

const FRAGMENT: usize = 8;

/// Protein structural-alignment kernel.
#[derive(Debug, Clone)]
pub struct CeKernel {
    structure_a: Vec<[f64; 3]>,
    structure_b: Vec<[f64; 3]>,
}

impl CeKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, residues: usize) -> Self {
        let mut rng = seeded_rng(seed);
        // Structure A: a random self-avoiding-ish walk (protein backbone analogue).
        let mut a = Vec::with_capacity(residues);
        let mut pos = [0.0f64; 3];
        for _ in 0..residues {
            for p in pos.iter_mut() {
                *p += 1.2 + 0.4 * sample_standard_normal(&mut rng);
            }
            a.push(pos);
        }
        // Structure B: structure A with noise plus a rigid offset — a genuine homolog.
        let b = a
            .iter()
            .map(|p| {
                [
                    p[0] + 5.0 + 0.3 * sample_standard_normal(&mut rng),
                    p[1] - 2.0 + 0.3 * sample_standard_normal(&mut rng),
                    p[2] + 0.3 * sample_standard_normal(&mut rng),
                ]
            })
            .collect();
        Self {
            structure_a: a,
            structure_b: b,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 120)
    }

    fn fragment_similarity(
        &self,
        ai: usize,
        bi: usize,
        dist_perf: Perforation,
        precision: Precision,
        cost: &mut Cost,
    ) -> f64 {
        // Compare intra-fragment distance matrices of the two fragments.
        let mut total = 0.0;
        let mut pairs = 0usize;
        let mut idx = 0usize;
        for x in 0..FRAGMENT {
            for y in (x + 1)..FRAGMENT {
                let keep = dist_perf.keeps(idx, FRAGMENT * (FRAGMENT - 1) / 2);
                idx += 1;
                if !keep {
                    continue;
                }
                let da = Self::dist(&self.structure_a[ai + x], &self.structure_a[ai + y]);
                let db = Self::dist(&self.structure_b[bi + x], &self.structure_b[bi + y]);
                total += (da - db).abs();
                pairs += 1;
                cost.ops += 12.0 * precision.op_cost();
                cost.bytes_touched += 48.0;
            }
        }
        if pairs == 0 {
            return 0.0;
        }
        precision.quantize(1.0 / (1.0 + total / pairs as f64))
    }

    fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }
}

impl ApproxKernel for CeKernel {
    fn name(&self) -> &'static str {
        "ce"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_FRAGMENT_PAIRS, Perforation::KeepEveryNth(p))
                    .with_label(format!("afp-keep1of{p}")),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_DISTANCES, Perforation::KeepEveryNth(2))
                .with_label("dist-keep1of2"),
        );
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("residues{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let afp_perf = config.perforation(SITE_FRAGMENT_PAIRS);
        let dist_perf = config.perforation(SITE_DISTANCES);
        let residue_fraction = config.input_fraction();
        let precision = config.precision;
        let mut cost = Cost::default();

        let usable_a = ((self.structure_a.len() as f64 * residue_fraction) as usize)
            .saturating_sub(FRAGMENT)
            .max(1);
        let usable_b = ((self.structure_b.len() as f64 * residue_fraction) as usize)
            .saturating_sub(FRAGMENT)
            .max(1);

        // Enumerate fragment pairs near the diagonal (CE restricts the search window) and
        // chain the best-scoring compatible path greedily.
        let window = 6usize;
        let mut best_per_position = vec![0.0f64; usable_a];
        let mut pair_idx = 0usize;
        for ai in 0..usable_a {
            let lo = ai.saturating_sub(window).min(usable_b - 1);
            let hi = (ai + window).min(usable_b - 1);
            for bi in lo..=hi {
                let keep = afp_perf.keeps(pair_idx, usable_a * (2 * window + 1));
                pair_idx += 1;
                if !keep {
                    continue;
                }
                let s = self.fragment_similarity(ai, bi, dist_perf, precision, &mut cost);
                if s > best_per_position[ai] {
                    best_per_position[ai] = s;
                }
            }
        }
        // Output: per-position best AFP similarity (the alignment path profile).
        KernelRun::new(cost, KernelOutput::Vector(best_per_position))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homologous_structures_align_well() {
        let k = CeKernel::small(29);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(profile) => {
                let mean: f64 = profile.iter().sum::<f64>() / profile.len() as f64;
                assert!(
                    mean > 0.4,
                    "mean AFP similarity {mean} should be high for homologs"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn afp_perforation_reduces_work() {
        let k = CeKernel::small(29);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_FRAGMENT_PAIRS, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.6);
    }

    #[test]
    fn distance_perforation_keeps_profile_similar() {
        let k = CeKernel::small(29);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_DISTANCES, Perforation::KeepEveryNth(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 30.0, "inaccuracy {inacc}%");
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn residue_sampling_shortens_profile_work() {
        let k = CeKernel::small(29);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.5));
        assert!(approx.cost.ops < precise.cost.ops);
    }
}
