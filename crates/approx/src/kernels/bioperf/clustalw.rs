//! ClustalW — progressive multiple sequence alignment.
//!
//! ClustalW computes all pairwise alignment distances, builds a guide tree, and then
//! progressively aligns sequences following the tree. The dominant cost is the pairwise
//! distance matrix. Knobs: perforate the pairwise-distance loop (site 0, falling back to a
//! cheap k-mer distance for skipped pairs), narrow the alignment band (site 1), sample
//! sequence columns, reduce precision.

use super::align::smith_waterman_banded;
use crate::data::{related_sequences, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: pairwise alignment loop.
pub const SITE_PAIRWISE: u32 = 0;
/// Perforable site: alignment band (TruncateBy(p) divides the band by p).
pub const SITE_BAND: u32 = 1;

/// Progressive multiple-sequence-alignment kernel.
#[derive(Debug, Clone)]
pub struct ClustalWKernel {
    sequences: Vec<Vec<u8>>,
    full_band: usize,
}

impl ClustalWKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_sequences: usize, seq_len: usize) -> Self {
        Self {
            sequences: related_sequences(seed, n_sequences, seq_len, 0.1, &DNA_ALPHABET),
            full_band: 20,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 12, 160)
    }

    fn kmer_distance(a: &[u8], b: &[u8]) -> f64 {
        // Cheap 3-mer profile distance used when the exact alignment is perforated away.
        let mut pa = [0.0f64; 64];
        let mut pb = [0.0f64; 64];
        let code = |c: u8| -> usize {
            match c {
                b'A' => 0,
                b'C' => 1,
                b'G' => 2,
                _ => 3,
            }
        };
        for w in a.windows(3) {
            pa[code(w[0]) * 16 + code(w[1]) * 4 + code(w[2])] += 1.0;
        }
        for w in b.windows(3) {
            pb[code(w[0]) * 16 + code(w[1]) * 4 + code(w[2])] += 1.0;
        }
        pa.iter()
            .zip(pb.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
            / (a.len() + b.len()).max(1) as f64
    }

    fn align_all(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.sequences.len();
        let pair_perf = config.perforation(SITE_PAIRWISE);
        let band_factor = match config.perforation(SITE_BAND) {
            Perforation::TruncateBy(p) => p.max(1) as usize,
            _ => 1,
        };
        let band = (self.full_band / band_factor).max(2);
        let col_sample = config.input_fraction();
        let precision = config.precision;
        let mut cost = Cost::default();

        // Pairwise distance matrix.
        let total_pairs = n * (n - 1) / 2;
        let mut pair_index = 0usize;
        let mut dist = vec![0.0f64; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let keep = pair_perf.keeps(pair_index, total_pairs);
                pair_index += 1;
                let la = (self.sequences[a].len() as f64 * col_sample) as usize;
                let lb = (self.sequences[b].len() as f64 * col_sample) as usize;
                let sa = &self.sequences[a][..la.max(3)];
                let sb = &self.sequences[b][..lb.max(3)];
                let d = if keep {
                    let (score, cells) = smith_waterman_banded(sa, sb, Some(band));
                    cost.ops += cells as f64 * 4.0 * precision.op_cost();
                    cost.bytes_touched += cells as f64 * 8.0;
                    let max_score = 2.0 * sa.len().min(sb.len()) as f64;
                    precision.quantize(1.0 - score / max_score.max(1.0))
                } else {
                    cost.ops += (sa.len() + sb.len()) as f64;
                    precision.quantize(Self::kmer_distance(sa, sb))
                };
                dist[a * n + b] = d;
                dist[b * n + a] = d;
            }
        }

        // Guide tree: greedy agglomerative joins; output the join-order distances, which
        // determine the progressive alignment order and are the structural result.
        let mut active: Vec<usize> = (0..n).collect();
        let mut working = dist;
        let mut joins = Vec::new();
        while active.len() > 1 {
            let mut best = (active[0], active[1], f64::INFINITY);
            for (i, &a) in active.iter().enumerate() {
                for &b in active.iter().skip(i + 1) {
                    let d = working[a * n + b];
                    if d < best.2 {
                        best = (a, b, d);
                    }
                    cost.ops += 1.0;
                }
            }
            joins.push(best.2);
            let (a, b, _) = best;
            for &c in &active {
                if c != a && c != b {
                    let nd = (working[a * n + c] + working[b * n + c]) / 2.0;
                    working[a * n + c] = nd;
                    working[c * n + a] = nd;
                }
            }
            active.retain(|&x| x != b);
        }
        (joins, cost)
    }
}

impl ApproxKernel for ClustalWKernel {
    fn name(&self) -> &'static str {
        "clustalw"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_PAIRWISE, Perforation::KeepEveryNth(p))
                    .with_label(format!("pairs-keep1of{p}")),
            );
        }
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_BAND, Perforation::TruncateBy(p))
                    .with_label(format!("band/{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("cols{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (joins, cost) = self.align_all(config);
        KernelRun::new(cost, KernelOutput::Vector(joins))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_guide_tree_has_expected_joins() {
        let k = ClustalWKernel::small(13);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(joins) => {
                assert_eq!(joins.len(), 11);
                assert!(joins
                    .iter()
                    .all(|d| d.is_finite() && *d >= 0.0 && *d <= 1.5));
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn pair_perforation_reduces_work() {
        let k = ClustalWKernel::small(13);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_PAIRWISE, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.7);
    }

    #[test]
    fn band_narrowing_reduces_work_with_small_error() {
        let k = ClustalWKernel::small(13);
        let precise = k.run_precise();
        let approx =
            k.run(&ApproxConfig::precise().with_perforation(SITE_BAND, Perforation::TruncateBy(2)));
        assert!(approx.cost.ops < precise.cost.ops);
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 50.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn column_sampling_reduces_bytes() {
        let k = ClustalWKernel::small(13);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.5));
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched);
    }
}
