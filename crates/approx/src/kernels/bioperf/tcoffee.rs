//! T-Coffee — consistency-based multiple sequence alignment.
//!
//! T-Coffee builds a library of pairwise alignments and re-scores each pairwise alignment
//! using third-sequence consistency (triplet extension), which is the dominant cost.
//! Knobs: perforate the triplet-extension loop (site 0), perforate the library construction
//! loop (site 1), sample sequence columns, reduce precision.

use super::align::smith_waterman_banded;
use crate::data::{related_sequences, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: triplet consistency-extension loop.
pub const SITE_TRIPLETS: u32 = 0;
/// Perforable site: primary library (pairwise alignment) loop.
pub const SITE_LIBRARY: u32 = 1;

/// Consistency-based multiple-sequence-alignment kernel.
#[derive(Debug, Clone)]
pub struct TCoffeeKernel {
    sequences: Vec<Vec<u8>>,
}

impl TCoffeeKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_sequences: usize, seq_len: usize) -> Self {
        Self {
            sequences: related_sequences(seed, n_sequences, seq_len, 0.08, &DNA_ALPHABET),
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 10, 120)
    }

    fn extend(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.sequences.len();
        let lib_perf = config.perforation(SITE_LIBRARY);
        let trip_perf = config.perforation(SITE_TRIPLETS);
        let col_fraction = config.input_fraction();
        let precision = config.precision;
        let mut cost = Cost::default();

        // Primary library: pairwise alignment scores.
        let mut library = vec![0.0f64; n * n];
        let total_pairs = n * (n - 1) / 2;
        let mut pair_index = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                let keep = lib_perf.keeps(pair_index, total_pairs);
                pair_index += 1;
                let la = (self.sequences[a].len() as f64 * col_fraction) as usize;
                let lb = (self.sequences[b].len() as f64 * col_fraction) as usize;
                let sa = &self.sequences[a][..la.max(3)];
                let sb = &self.sequences[b][..lb.max(3)];
                let score = if keep {
                    let (s, cells) = smith_waterman_banded(sa, sb, Some(16));
                    cost.ops += cells as f64 * 4.0 * precision.op_cost();
                    cost.bytes_touched += cells as f64 * 8.0;
                    s
                } else {
                    // Skipped: crude identity estimate over the common prefix.
                    let common = sa.len().min(sb.len());
                    let matches = (0..common).filter(|&i| sa[i] == sb[i]).count();
                    cost.ops += common as f64;
                    matches as f64 * 2.0
                };
                let norm = precision.quantize(score / (2.0 * sa.len().min(sb.len()).max(1) as f64));
                library[a * n + b] = norm;
                library[b * n + a] = norm;
            }
        }

        // Consistency extension: re-score every pair by averaging its direct score with
        // paths through every third sequence (the triplet loop, perforable).
        let mut extended = vec![0.0f64; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let mut score = library[a * n + b];
                let mut weight = 1.0;
                let mut considered = 0usize;
                for c in 0..n {
                    if c == a || c == b {
                        continue;
                    }
                    let keep = trip_perf.keeps(considered, n - 2);
                    considered += 1;
                    if !keep {
                        continue;
                    }
                    let through = library[a * n + c].min(library[c * n + b]);
                    score += through;
                    weight += 1.0;
                    cost.ops += 4.0 * precision.op_cost();
                    cost.bytes_touched += 16.0;
                }
                let v = precision.quantize(score / weight);
                extended[a * n + b] = v;
                extended[b * n + a] = v;
            }
        }

        // Output: the upper triangle of the extended library (the alignment scaffold).
        let mut out = Vec::with_capacity(total_pairs);
        for a in 0..n {
            for b in (a + 1)..n {
                out.push(extended[a * n + b]);
            }
        }
        (out, cost)
    }
}

impl ApproxKernel for TCoffeeKernel {
    fn name(&self) -> &'static str {
        "tcoffee"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_TRIPLETS, Perforation::KeepEveryNth(p))
                    .with_label(format!("triplets-keep1of{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_LIBRARY, Perforation::KeepEveryNth(p))
                    .with_label(format!("library-keep1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("cols{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (scores, cost) = self.extend(config);
        KernelRun::new(cost, KernelOutput::Vector(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_library_scores_are_normalized() {
        let k = TCoffeeKernel::small(23);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(scores) => {
                assert_eq!(scores.len(), 10 * 9 / 2);
                assert!(scores.iter().all(|s| *s >= 0.0 && *s <= 1.5));
                // Related sequences: consistency-extended scores should be well above zero.
                assert!(scores.iter().sum::<f64>() / scores.len() as f64 > 0.2);
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn triplet_perforation_reduces_work() {
        let k = TCoffeeKernel::small(23);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_TRIPLETS, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn library_perforation_is_much_cheaper() {
        let k = TCoffeeKernel::small(23);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_LIBRARY, Perforation::KeepEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.75);
    }

    #[test]
    fn mild_triplet_perforation_has_bounded_error() {
        let k = TCoffeeKernel::small(23);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_TRIPLETS, Perforation::KeepEveryNth(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 30.0, "inaccuracy {inacc}%");
    }
}
