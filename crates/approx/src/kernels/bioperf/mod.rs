//! BioPerf-derived kernels: bioinformatics applications.

pub mod blast;
pub mod ce;
pub mod clustalw;
pub mod fasta;
pub mod glimmer;
pub mod grappa;
pub mod hmmer;
pub mod tcoffee;

/// Shared scoring constants for the sequence-alignment kernels.
pub(crate) mod align {
    /// Score for a character match.
    pub const MATCH: f64 = 2.0;
    /// Penalty for a mismatch.
    pub const MISMATCH: f64 = -1.0;
    /// Penalty for a gap.
    pub const GAP: f64 = -2.0;

    /// Banded Smith–Waterman local-alignment score between two sequences.
    ///
    /// `band` limits the anti-diagonal distance considered (None = full matrix). Returns
    /// the best local score and the number of cells evaluated.
    pub fn smith_waterman_banded(a: &[u8], b: &[u8], band: Option<usize>) -> (f64, u64) {
        let n = a.len();
        let m = b.len();
        if n == 0 || m == 0 {
            return (0.0, 0);
        }
        let mut prev = vec![0.0f64; m + 1];
        let mut curr = vec![0.0f64; m + 1];
        let mut best = 0.0f64;
        let mut cells = 0u64;
        for i in 1..=n {
            let (lo, hi) = match band {
                Some(w) => {
                    let centre = i * m / n;
                    (centre.saturating_sub(w).max(1), (centre + w).min(m))
                }
                None => (1, m),
            };
            for cell in curr.iter_mut() {
                *cell = 0.0;
            }
            for j in lo..=hi {
                let s = if a[i - 1] == b[j - 1] {
                    MATCH
                } else {
                    MISMATCH
                };
                let val = (prev[j - 1] + s)
                    .max(prev[j] + GAP)
                    .max(curr[j - 1] + GAP)
                    .max(0.0);
                curr[j] = val;
                if val > best {
                    best = val;
                }
                cells += 1;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        (best, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::align::*;

    #[test]
    fn identical_sequences_score_length_times_match() {
        let s = b"ACGTACGTACGT";
        let (score, cells) = smith_waterman_banded(s, s, None);
        assert!((score - s.len() as f64 * MATCH).abs() < 1e-9);
        assert_eq!(cells, (s.len() * s.len()) as u64);
    }

    #[test]
    fn banding_reduces_cells_and_bounds_score() {
        let a = b"ACGTACGTACGTACGTACGT";
        let b = b"ACGTACGAACGTACGTACGT";
        let (full, full_cells) = smith_waterman_banded(a, b, None);
        let (banded, banded_cells) = smith_waterman_banded(a, b, Some(3));
        assert!(banded_cells < full_cells);
        assert!(banded <= full + 1e-9);
        assert!(banded > 0.0);
    }

    #[test]
    fn empty_sequence_scores_zero() {
        assert_eq!(smith_waterman_banded(b"", b"ACGT", None).0, 0.0);
    }
}
