//! Fasta — banded Smith–Waterman database search.
//!
//! The FASTA algorithm scores a query against every database sequence using a banded local
//! alignment seeded by k-tuple diagonals. Knobs: perforate the database loop (site 0),
//! narrow the alignment band (site 1 via truncation factors), sample the database, reduce
//! precision (modelled as coarser band selection plus quantized scores).

use super::align::smith_waterman_banded;
use crate::data::{random_sequence, related_sequences, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: database-sequence loop.
pub const SITE_DATABASE: u32 = 0;
/// Perforable site: alignment band width (TruncateBy(p) divides the band by p).
pub const SITE_BAND: u32 = 1;

/// Banded local-alignment database-search kernel.
#[derive(Debug, Clone)]
pub struct FastaKernel {
    query: Vec<u8>,
    database: Vec<Vec<u8>>,
    full_band: usize,
}

impl FastaKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, query_len: usize, db_sequences: usize, seq_len: usize) -> Self {
        let query = random_sequence(seed, query_len, &DNA_ALPHABET);
        let mut database =
            related_sequences(seed, db_sequences / 2, query_len, 0.12, &DNA_ALPHABET);
        for s in &mut database {
            s.truncate(seq_len.min(s.len()));
        }
        for i in 0..(db_sequences - db_sequences / 2) {
            database.push(random_sequence(
                seed + 900 + i as u64,
                seq_len,
                &DNA_ALPHABET,
            ));
        }
        Self {
            query,
            database,
            full_band: 24,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 150, 40, 140)
    }
}

impl ApproxKernel for FastaKernel {
    fn name(&self) -> &'static str {
        "fasta"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_BAND, Perforation::TruncateBy(p))
                    .with_label(format!("band/{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_DATABASE, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("db-skip1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("db{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let db_perf = config.perforation(SITE_DATABASE);
        let band_factor = match config.perforation(SITE_BAND) {
            Perforation::TruncateBy(p) => p.max(1) as usize,
            _ => 1,
        };
        let band = (self.full_band / band_factor).max(2);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();
        let n = self.database.len();
        let mut scores = vec![0.0f64; n];
        for (d, target) in self.database.iter().enumerate() {
            if !db_perf.keeps(d, n) || !sample.keeps(d, n) {
                continue;
            }
            let (score, cells) = smith_waterman_banded(&self.query, target, Some(band));
            scores[d] = precision.quantize(score);
            cost.ops += cells as f64 * 4.0 * precision.op_cost();
            cost.bytes_touched += cells as f64 * 8.0;
        }
        KernelRun::new(cost, KernelOutput::Vector(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn related_sequences_score_higher_than_noise() {
        let k = FastaKernel::small(31);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(scores) => {
                let related: f64 = scores[..20].iter().sum::<f64>() / 20.0;
                let noise: f64 = scores[20..].iter().sum::<f64>() / 20.0;
                assert!(related > noise);
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn narrower_band_is_cheaper() {
        let k = FastaKernel::small(31);
        let precise = k.run_precise();
        let approx =
            k.run(&ApproxConfig::precise().with_perforation(SITE_BAND, Perforation::TruncateBy(3)));
        assert!(approx.cost.ops < precise.cost.ops * 0.7);
    }

    #[test]
    fn narrower_band_never_increases_scores() {
        let k = FastaKernel::small(31);
        let precise = k.run_precise();
        let approx =
            k.run(&ApproxConfig::precise().with_perforation(SITE_BAND, Perforation::TruncateBy(2)));
        if let (KernelOutput::Vector(p), KernelOutput::Vector(a)) =
            (&precise.output, &approx.output)
        {
            for (x, y) in a.iter().zip(p.iter()) {
                assert!(*x <= *y + 1e-9, "banded score {x} exceeded full score {y}");
            }
        } else {
            panic!("unexpected output kinds");
        }
    }

    #[test]
    fn database_skip_reduces_work() {
        let k = FastaKernel::small(31);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_DATABASE, Perforation::SkipEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }
}
