//! Hmmer — profile hidden-Markov-model scoring of a sequence database.
//!
//! The BioPerf hmmer workload scores every database sequence against a profile HMM with
//! the Viterbi algorithm. Knobs: perforate the database-sequence loop (site 0), band the
//! Viterbi dynamic program (site 1, modelled as perforating profile states), sample the
//! database, reduce precision.

use crate::data::{random_sequence, related_sequences, PROTEIN_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: database-sequence loop.
pub const SITE_DATABASE: u32 = 0;
/// Perforable site: profile-state loop inside Viterbi.
pub const SITE_STATES: u32 = 1;

/// Profile-HMM scoring kernel.
#[derive(Debug, Clone)]
pub struct HmmerKernel {
    profile: Vec<Vec<f64>>, // per-state emission log-probabilities over the alphabet
    database: Vec<Vec<u8>>,
}

impl HmmerKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, states: usize, db_sequences: usize, seq_len: usize) -> Self {
        // Build a profile from the first `states` positions of the ancestor that also
        // seeds the related half of the database, so those sequences genuinely match it.
        // Emissions are log-odds against the uniform background (as in HMMER's null
        // model), so a matching residue scores positive and genuine alignments beat the
        // all-gap null path.
        let background = 1.0 / PROTEIN_ALPHABET.len() as f64;
        let ancestor = random_sequence(seed, seq_len, &PROTEIN_ALPHABET);
        let profile = ancestor
            .iter()
            .take(states)
            .map(|&c| {
                PROTEIN_ALPHABET
                    .iter()
                    .map(|&a| {
                        let emission = if a == c { 0.6 } else { 0.4 / 7.0 };
                        (emission / background).ln()
                    })
                    .collect()
            })
            .collect();
        // Half the database is related to the ancestor, half is random noise.
        let mut database =
            related_sequences(seed, db_sequences / 2, seq_len, 0.15, &PROTEIN_ALPHABET);
        for i in 0..(db_sequences - db_sequences / 2) {
            database.push(random_sequence(
                seed + 100 + i as u64,
                seq_len,
                &PROTEIN_ALPHABET,
            ));
        }
        Self { profile, database }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 40, 60, 80)
    }

    fn alphabet_index(c: u8) -> usize {
        PROTEIN_ALPHABET.iter().position(|&a| a == c).unwrap_or(0)
    }

    fn viterbi_score(
        &self,
        seq: &[u8],
        state_perf: Perforation,
        precision: Precision,
        cost: &mut Cost,
    ) -> f64 {
        let states = self.profile.len();
        let gap_penalty = -1.5f64;
        // dp[s] = best log-score ending in state s after consuming current prefix.
        let mut dp = vec![f64::NEG_INFINITY; states + 1];
        dp[0] = 0.0;
        for &c in seq {
            let idx = Self::alphabet_index(c);
            let mut next = vec![f64::NEG_INFINITY; states + 1];
            next[0] = dp[0] + gap_penalty * 0.1;
            for s in 1..=states {
                if !state_perf.keeps(s - 1, states) {
                    // Skipped state: inherit with a gap penalty (band approximation).
                    next[s] = dp[s] + gap_penalty * 0.1;
                    continue;
                }
                let emit = self.profile[s - 1][idx];
                let stay = dp[s] + gap_penalty;
                let advance = dp[s - 1] + emit;
                next[s] = precision.quantize(stay.max(advance));
                cost.ops += 5.0 * precision.op_cost();
                cost.bytes_touched += 24.0;
            }
            dp = next;
        }
        dp.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

impl ApproxKernel for HmmerKernel {
    fn name(&self) -> &'static str {
        "hmmer"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_DATABASE, Perforation::KeepEveryNth(p))
                    .with_label(format!("db-keep1of{p}")),
            );
        }
        for p in [3u32, 5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_STATES, Perforation::SkipEveryNth(p))
                    .with_label(format!("states-skip1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("db{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let db_perf = config.perforation(SITE_DATABASE);
        let state_perf = config.perforation(SITE_STATES);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let mut cost = Cost::default();
        let n = self.database.len();
        let mut scores = vec![0.0f64; n];
        for (i, seq) in self.database.iter().enumerate() {
            if !db_perf.keeps(i, n) || !sample.keeps(i, n) {
                // Skipped sequences report a floor score (treated as "no hit").
                scores[i] = -1e3;
                continue;
            }
            scores[i] = self.viterbi_score(seq, state_perf, config.precision, &mut cost);
        }
        KernelRun::new(cost, KernelOutput::Vector(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn related_sequences_score_higher_than_noise() {
        let k = HmmerKernel::small(11);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(scores) => {
                let related_mean: f64 = scores[..30].iter().sum::<f64>() / 30.0;
                let noise_mean: f64 = scores[30..].iter().sum::<f64>() / 30.0;
                assert!(
                    related_mean > noise_mean,
                    "profile should prefer related sequences ({related_mean} vs {noise_mean})"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn database_perforation_reduces_work() {
        let k = HmmerKernel::small(11);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_DATABASE, Perforation::KeepEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.7);
    }

    #[test]
    fn state_banding_is_cheaper_with_bounded_error() {
        let k = HmmerKernel::small(11);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_STATES, Perforation::SkipEveryNth(5)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
        // Log-odds scores sit near zero, so per-sequence relative error is an inflated
        // measure; banding must still stay clearly away from total (100%) divergence.
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 85.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn determinism() {
        let k = HmmerKernel::small(11);
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }
}
