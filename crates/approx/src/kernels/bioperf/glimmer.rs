//! Glimmer — gene finding with interpolated Markov models (IMMs).
//!
//! Glimmer scores candidate open reading frames in a genome with Markov models of coding
//! regions. Knobs: lower the Markov-model order (precision analogue, site 0 as
//! TruncateBy), perforate the candidate-ORF loop (site 1), sample the training region,
//! reduce floating-point precision.

use std::collections::BTreeMap;

use crate::data::{random_sequence, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: Markov-model order reduction (TruncateBy(p) divides the order by p).
pub const SITE_MODEL_ORDER: u32 = 0;
/// Perforable site: candidate-ORF scoring loop.
pub const SITE_CANDIDATES: u32 = 1;

/// Gene-finding kernel with interpolated Markov models.
#[derive(Debug, Clone)]
pub struct GlimmerKernel {
    genome: Vec<u8>,
    coding_regions: Vec<(usize, usize)>,
    candidates: Vec<(usize, usize)>,
    max_order: usize,
}

impl GlimmerKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, genome_len: usize, n_genes: usize) -> Self {
        let mut genome = random_sequence(seed, genome_len, &DNA_ALPHABET);
        // Insert synthetic "coding" regions with strong codon bias (every third base G).
        let mut coding_regions = Vec::new();
        let gene_len = genome_len / (2 * n_genes);
        for g in 0..n_genes {
            let start = g * 2 * gene_len;
            let end = (start + gene_len).min(genome_len);
            for i in (start..end).step_by(3) {
                genome[i] = b'G';
            }
            coding_regions.push((start, end));
        }
        // Candidate ORFs: the true genes plus an equal number of random non-coding windows.
        let mut candidates = coding_regions.clone();
        for g in 0..n_genes {
            let start = (g * 2 + 1) * gene_len;
            let end = (start + gene_len).min(genome_len);
            if start < end {
                candidates.push((start, end));
            }
        }
        Self {
            genome,
            coding_regions,
            candidates,
            max_order: 5,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 6_000, 8)
    }

    fn train_model(
        &self,
        order: usize,
        train_fraction: f64,
        cost: &mut Cost,
    ) -> BTreeMap<Vec<u8>, f64> {
        // Count (context, next-base) frequencies over the coding regions. `BTreeMap`,
        // not `HashMap`: the smoothing loop below iterates `counts`, and kernel outputs
        // must be bit-identical across runs and platforms.
        let mut counts: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        let mut context_totals: BTreeMap<Vec<u8>, f64> = BTreeMap::new();
        for &(start, end) in &self.coding_regions {
            let span = ((end - start) as f64 * train_fraction) as usize;
            let end = start + span;
            for i in (start + order)..end {
                let context = self.genome[i - order..i].to_vec();
                *counts
                    .entry([&context[..], &[self.genome[i]]].concat())
                    .or_insert(0.0) += 1.0;
                *context_totals.entry(context).or_insert(0.0) += 1.0;
                cost.ops += 4.0;
                cost.bytes_touched += order as f64 + 1.0;
            }
        }
        // Convert to log-probabilities with add-one smoothing.
        let mut model = BTreeMap::new();
        for (key, c) in counts {
            let context = key[..key.len() - 1].to_vec();
            let total = context_totals.get(&context).copied().unwrap_or(1.0);
            model.insert(key, ((c + 1.0) / (total + 4.0)).ln());
        }
        model
    }

    fn score_window(
        &self,
        window: (usize, usize),
        order: usize,
        model: &BTreeMap<Vec<u8>, f64>,
        precision: Precision,
        cost: &mut Cost,
    ) -> f64 {
        let (start, end) = window;
        let mut score = 0.0;
        for i in (start + order)..end {
            let key = self.genome[i - order..=i].to_vec();
            let p = model.get(&key).copied().unwrap_or((0.2f64).ln());
            score += p - (0.25f64).ln(); // log-likelihood ratio vs uniform background
            cost.ops += 3.0 * precision.op_cost();
            cost.bytes_touched += order as f64 + 1.0;
        }
        precision.quantize(score / (end - start).max(1) as f64)
    }
}

impl ApproxKernel for GlimmerKernel {
    fn name(&self) -> &'static str {
        "glimmer"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_MODEL_ORDER, Perforation::TruncateBy(p))
                    .with_label(format!("order/{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_CANDIDATES, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("candidates-skip1of{p}")),
            );
        }
        for f in [0.6, 0.4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("train{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let order_factor = match config.perforation(SITE_MODEL_ORDER) {
            Perforation::TruncateBy(p) => p.max(1) as usize,
            _ => 1,
        };
        let order = (self.max_order / order_factor).max(1);
        let cand_perf = config.perforation(SITE_CANDIDATES);
        let precision = config.precision;
        let mut cost = Cost::default();
        let model = self.train_model(order, config.input_fraction(), &mut cost);
        let n = self.candidates.len();
        let mut scores = vec![0.0f64; n];
        for (i, &window) in self.candidates.iter().enumerate() {
            if !cand_perf.keeps(i, n) {
                continue;
            }
            scores[i] = self.score_window(window, order, &model, precision, &mut cost);
        }
        KernelRun::new(cost, KernelOutput::Vector(scores))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coding_regions_score_higher_than_noncoding() {
        let k = GlimmerKernel::small(19);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(scores) => {
                let n_genes = k.coding_regions.len();
                let coding: f64 = scores[..n_genes].iter().sum::<f64>() / n_genes as f64;
                let noncoding: f64 =
                    scores[n_genes..].iter().sum::<f64>() / (scores.len() - n_genes) as f64;
                assert!(
                    coding > noncoding,
                    "coding {coding} vs noncoding {noncoding}"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn lower_order_model_is_cheaper() {
        let k = GlimmerKernel::small(19);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_MODEL_ORDER, Perforation::TruncateBy(5)),
        );
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched);
    }

    #[test]
    fn training_sampling_reduces_work() {
        let k = GlimmerKernel::small(19);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.4));
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn candidate_perforation_leaves_skipped_scores_zero() {
        let k = GlimmerKernel::small(19);
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_CANDIDATES, Perforation::SkipEveryNth(2)),
        );
        match &approx.output {
            KernelOutput::Vector(scores) => assert!(scores.contains(&0.0)),
            _ => panic!("unexpected output"),
        }
    }
}
