//! Blast — seed-and-extend local sequence search.
//!
//! BLAST finds database sequences similar to a query by locating exact k-mer seed matches
//! and extending them into local alignments. Knobs: perforate the database loop (site 0),
//! perforate the seed-extension loop (site 1, extending only a subset of seeds), sample the
//! database, reduce precision (extension score arithmetic).

use std::collections::BTreeMap;

use crate::data::{random_sequence, related_sequences, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: database-sequence loop.
pub const SITE_DATABASE: u32 = 0;
/// Perforable site: seed-extension loop.
pub const SITE_SEEDS: u32 = 1;

const KMER: usize = 6;

/// Seed-and-extend sequence-search kernel.
#[derive(Debug, Clone)]
pub struct BlastKernel {
    query: Vec<u8>,
    database: Vec<Vec<u8>>,
    query_index: BTreeMap<Vec<u8>, Vec<usize>>,
}

impl BlastKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, query_len: usize, db_sequences: usize, seq_len: usize) -> Self {
        let query = random_sequence(seed, query_len, &DNA_ALPHABET);
        let mut database = Vec::with_capacity(db_sequences);
        // Half the database contains fragments of the query with mutations; half is noise.
        let related = related_sequences(seed, db_sequences / 2, query_len, 0.1, &DNA_ALPHABET);
        for mut r in related {
            r.truncate(seq_len.min(r.len()));
            database.push(r);
        }
        for i in 0..(db_sequences - db_sequences / 2) {
            database.push(random_sequence(
                seed + 500 + i as u64,
                seq_len,
                &DNA_ALPHABET,
            ));
        }
        // `BTreeMap`, not `HashMap`: lookups are order-independent today, but the
        // deterministic-output invariant bans hash containers in kernel code outright
        // so a future iteration can't silently reintroduce run-to-run jitter.
        let mut query_index: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
        if query.len() >= KMER {
            for i in 0..=(query.len() - KMER) {
                query_index
                    .entry(query[i..i + KMER].to_vec())
                    .or_default()
                    .push(i);
            }
        }
        Self {
            query,
            database,
            query_index,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 200, 50, 150)
    }

    fn extend(
        &self,
        target: &[u8],
        q_pos: usize,
        t_pos: usize,
        precision: Precision,
        cost: &mut Cost,
    ) -> f64 {
        // Ungapped extension in both directions with X-drop termination.
        let mut score = KMER as f64 * 2.0;
        let mut best = score;
        // Right extension.
        let mut qi = q_pos + KMER;
        let mut ti = t_pos + KMER;
        while qi < self.query.len() && ti < target.len() {
            score += if self.query[qi] == target[ti] {
                2.0
            } else {
                -3.0
            };
            score = precision.quantize(score);
            best = best.max(score);
            cost.ops += 3.0 * precision.op_cost();
            cost.bytes_touched += 2.0;
            if best - score > 10.0 {
                break;
            }
            qi += 1;
            ti += 1;
        }
        // Left extension.
        let mut score_l = best;
        let mut qi = q_pos;
        let mut ti = t_pos;
        while qi > 0 && ti > 0 {
            qi -= 1;
            ti -= 1;
            score_l += if self.query[qi] == target[ti] {
                2.0
            } else {
                -3.0
            };
            score_l = precision.quantize(score_l);
            best = best.max(score_l);
            cost.ops += 3.0 * precision.op_cost();
            cost.bytes_touched += 2.0;
            if best - score_l > 10.0 {
                break;
            }
        }
        best
    }
}

impl ApproxKernel for BlastKernel {
    fn name(&self) -> &'static str {
        "blast"
    }

    fn suite(&self) -> Suite {
        Suite::BioPerf
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_SEEDS, Perforation::KeepEveryNth(p))
                    .with_label(format!("seeds-keep1of{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_DATABASE, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("db-skip1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("db{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let db_perf = config.perforation(SITE_DATABASE);
        let seed_perf = config.perforation(SITE_SEEDS);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();
        let n = self.database.len();
        let mut hits = vec![0.0f64; n];
        for (d, target) in self.database.iter().enumerate() {
            if !db_perf.keeps(d, n) || !sample.keeps(d, n) {
                continue;
            }
            let mut best = 0.0f64;
            if target.len() >= KMER {
                let mut seed_idx = 0usize;
                for t_pos in 0..=(target.len() - KMER) {
                    cost.ops += 2.0;
                    cost.bytes_touched += KMER as f64;
                    if let Some(q_positions) = self.query_index.get(&target[t_pos..t_pos + KMER]) {
                        for &q_pos in q_positions {
                            let keep = seed_perf.keeps(seed_idx, 64);
                            seed_idx += 1;
                            if !keep {
                                continue;
                            }
                            let s = self.extend(target, q_pos, t_pos, precision, &mut cost);
                            if s > best {
                                best = s;
                            }
                        }
                    }
                }
            }
            hits[d] = best;
        }
        KernelRun::new(cost, KernelOutput::Vector(hits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn related_targets_score_higher() {
        let k = BlastKernel::small(21);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(hits) => {
                let related: f64 = hits[..25].iter().sum::<f64>() / 25.0;
                let noise: f64 = hits[25..].iter().sum::<f64>() / 25.0;
                assert!(related > noise, "related {related} vs noise {noise}");
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn seed_perforation_is_cheaper() {
        let k = BlastKernel::small(21);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_SEEDS, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn database_sampling_scales_bytes() {
        let k = BlastKernel::small(21);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.5));
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched * 0.8);
    }

    #[test]
    fn mild_perforation_keeps_top_hits() {
        let k = BlastKernel::small(21);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_SEEDS, Perforation::KeepEveryNth(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 60.0, "inaccuracy {inacc}%");
    }
}
