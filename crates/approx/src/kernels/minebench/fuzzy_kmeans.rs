//! Fuzzy K-means — fuzzy c-means clustering with soft memberships.
//!
//! Each point holds a membership weight for every cluster; iterations update memberships
//! and weighted centroids. Approximation knobs: perforate refinement iterations (site 0),
//! perforate the membership-update loop (site 1), sample input, reduce precision.

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: outer refinement iterations.
pub const SITE_ITERATIONS: u32 = 0;
/// Perforable site: per-point membership update.
pub const SITE_MEMBERSHIP: u32 = 1;

/// Fuzzy c-means clustering kernel.
#[derive(Debug, Clone)]
pub struct FuzzyKMeansKernel {
    points: PointCloud,
    k: usize,
    iterations: usize,
    fuzziness: f64,
}

impl FuzzyKMeansKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_points: usize, dims: usize, k: usize, iterations: usize) -> Self {
        Self {
            points: PointCloud::gaussian_mixture(seed, n_points, dims, k),
            k,
            iterations,
            fuzziness: 2.0,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 500, 4, 5, 12)
    }

    fn cluster(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.points.len();
        let dims = self.points.dims;
        let iter_perf = config.perforation(SITE_ITERATIONS);
        let member_perf = config.perforation(SITE_MEMBERSHIP);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();
        let m_exp = 2.0 / (self.fuzziness - 1.0);

        let mut centroids: Vec<Vec<f64>> = (0..self.k)
            .map(|c| self.points.point(c * n / self.k).to_vec())
            .collect();
        let mut memberships = vec![1.0 / self.k as f64; n * self.k];

        for it in 0..self.iterations {
            if !iter_perf.keeps(it, self.iterations) {
                continue;
            }
            // Membership update.
            for i in 0..n {
                if !sample.keeps(i, n) || !member_perf.keeps(i, n) {
                    continue;
                }
                let dists: Vec<f64> = centroids
                    .iter()
                    .map(|c| precision.quantize(self.points.dist2(i, c).max(1e-9)))
                    .collect();
                cost.ops += (self.k * 3 * dims) as f64 * precision.op_cost();
                cost.bytes_touched += (self.k * dims) as f64 * 8.0;
                for c in 0..self.k {
                    let mut denom = 0.0;
                    for other in 0..self.k {
                        denom += (dists[c] / dists[other]).powf(m_exp / 2.0);
                    }
                    memberships[i * self.k + c] = precision.quantize(1.0 / denom.max(1e-12));
                    cost.ops += self.k as f64 * 4.0 * precision.op_cost();
                }
            }
            // Centroid update.
            for c in 0..self.k {
                let mut num = vec![0.0f64; dims];
                let mut den = 0.0;
                for i in 0..n {
                    let w = memberships[i * self.k + c].powf(self.fuzziness);
                    den += w;
                    for d in 0..dims {
                        num[d] += w * self.points.point(i)[d];
                    }
                }
                for d in 0..dims {
                    centroids[c][d] = precision.quantize(num[d] / den.max(1e-12));
                }
                cost.ops += (n * (dims + 2)) as f64 * precision.op_cost() * 0.25;
            }
        }
        (centroids.into_iter().flatten().collect(), cost)
    }
}

impl ApproxKernel for FuzzyKMeansKernel {
    fn name(&self) -> &'static str {
        "fuzzy_kmeans"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(p))
                    .with_label(format!("iters-truncate{p}")),
            );
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_MEMBERSHIP, Perforation::KeepEveryNth(p))
                    .with_label(format!("member-keep1of{p}")),
            );
        }
        for f in [0.6, 0.4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(2))
                .with_precision(Precision::F32)
                .with_label("iters-truncate2+f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (centroids, cost) = self.cluster(config);
        KernelRun::new(cost, KernelOutput::Vector(centroids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_centroids_are_finite() {
        let run = FuzzyKMeansKernel::small(3).run_precise();
        match &run.output {
            KernelOutput::Vector(c) => {
                assert_eq!(c.len(), 5 * 4);
                assert!(c.iter().all(|v| v.is_finite()));
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn truncation_reduces_work_and_keeps_centroids_close() {
        let k = FuzzyKMeansKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.75);
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 25.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn membership_perforation_cheaper_than_precise() {
        let k = FuzzyKMeansKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_MEMBERSHIP, Perforation::KeepEveryNth(4)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn candidates_nonempty_and_approximate() {
        let k = FuzzyKMeansKernel::small(3);
        let cfgs = k.candidate_configs();
        assert!(cfgs.len() >= 8);
        assert!(cfgs.iter().all(|c| !c.is_precise()));
    }
}
