//! ScalParC — scalable parallel decision-tree classification.
//!
//! ScalParC builds a decision tree by evaluating candidate split points per attribute at
//! every node. Knobs: perforate the candidate-split evaluation loop (site 0), perforate the
//! tree-depth loop (site 1, truncating growth), sample training rows, reduce precision.

use crate::data::CountMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: candidate split evaluation.
pub const SITE_SPLIT_CANDIDATES: u32 = 0;
/// Perforable site: tree depth (growth levels).
pub const SITE_TREE_DEPTH: u32 = 1;

/// Decision-tree induction kernel.
#[derive(Debug, Clone)]
pub struct ScalParCKernel {
    data: CountMatrix,
    max_depth: usize,
}

impl ScalParCKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, rows: usize, cols: usize, max_depth: usize) -> Self {
        Self {
            data: CountMatrix::synthetic(seed, rows, cols, 2),
            max_depth,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 500, 24, 6)
    }

    fn label(&self, row: usize) -> u32 {
        (row % 2) as u32
    }

    fn gini(&self, rows: &[usize]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let pos = rows.iter().filter(|&&r| self.label(r) == 1).count() as f64;
        let p = pos / rows.len() as f64;
        2.0 * p * (1.0 - p)
    }

    fn build(&self, config: &ApproxConfig) -> (Vec<u32>, Cost) {
        let rows_total = self.data.rows;
        let cols = self.data.cols;
        let split_perf = config.perforation(SITE_SPLIT_CANDIDATES);
        let depth_perf = config.perforation(SITE_TREE_DEPTH);
        let row_sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        let training: Vec<usize> = (0..rows_total)
            .filter(|&r| row_sample.keeps(r, rows_total))
            .collect();

        // Grow the tree breadth-first; leaves predict majority class. We record, for every
        // training row, the leaf-majority prediction — that labelling is the output.
        let mut node_rows: Vec<Vec<usize>> = vec![training.clone()];
        for depth in 0..self.max_depth {
            if !depth_perf.keeps(depth, self.max_depth) {
                break;
            }
            let mut next_level: Vec<Vec<usize>> = Vec::new();
            for rows in &node_rows {
                if rows.len() < 8 || self.gini(rows) < 0.05 {
                    next_level.push(rows.clone());
                    continue;
                }
                // Evaluate candidate splits: one threshold per attribute (its mean), with
                // the attribute loop perforable.
                let mut best: Option<(usize, f64, f64)> = None; // (attr, threshold, gain)
                let parent_gini = self.gini(rows);
                for a in 0..cols {
                    if !split_perf.keeps(a, cols) {
                        continue;
                    }
                    let mean: f64 =
                        rows.iter().map(|&r| self.data.at(r, a)).sum::<f64>() / rows.len() as f64;
                    let (left, right): (Vec<usize>, Vec<usize>) =
                        rows.iter().partition(|&&r| self.data.at(r, a) <= mean);
                    cost.ops += rows.len() as f64 * 3.0 * precision.op_cost();
                    cost.bytes_touched += rows.len() as f64 * 8.0;
                    if left.is_empty() || right.is_empty() {
                        continue;
                    }
                    let weighted = (left.len() as f64 * self.gini(&left)
                        + right.len() as f64 * self.gini(&right))
                        / rows.len() as f64;
                    let gain = precision.quantize(parent_gini - weighted);
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((a, mean, gain));
                    }
                }
                match best {
                    Some((a, threshold, gain)) if gain > 1e-6 => {
                        let (left, right): (Vec<usize>, Vec<usize>) =
                            rows.iter().partition(|&&r| self.data.at(r, a) <= threshold);
                        next_level.push(left);
                        next_level.push(right);
                    }
                    _ => next_level.push(rows.clone()),
                }
            }
            node_rows = next_level;
        }

        // Predictions for all rows (rows excluded by sampling get the global majority).
        let mut predictions = vec![0u32; rows_total];
        let global_majority = {
            let pos = training.iter().filter(|&&r| self.label(r) == 1).count();
            u32::from(pos * 2 > training.len())
        };
        predictions.fill(global_majority);
        for leaf in &node_rows {
            if leaf.is_empty() {
                continue;
            }
            let pos = leaf.iter().filter(|&&r| self.label(r) == 1).count();
            let majority = u32::from(pos * 2 > leaf.len());
            for &r in leaf {
                predictions[r] = majority;
            }
        }
        (predictions, cost)
    }
}

impl ApproxKernel for ScalParCKernel {
    fn name(&self) -> &'static str {
        "scalparc"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_SPLIT_CANDIDATES, Perforation::KeepEveryNth(p))
                    .with_label(format!("splits-keep1of{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_TREE_DEPTH, Perforation::TruncateBy(p))
                    .with_label(format!("depth-truncate{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("rows{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (predictions, cost) = self.build(config);
        KernelRun::new(cost, KernelOutput::Labels(predictions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_tree_fits_training_data_reasonably() {
        let k = ScalParCKernel::small(8);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Labels(pred) => {
                let correct = pred
                    .iter()
                    .enumerate()
                    .filter(|(r, p)| k.label(*r) == **p)
                    .count();
                let acc = correct as f64 / pred.len() as f64;
                assert!(acc >= 0.5, "training accuracy {acc}");
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn split_perforation_reduces_work() {
        let k = ScalParCKernel::small(8);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_SPLIT_CANDIDATES, Perforation::KeepEveryNth(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.8);
    }

    #[test]
    fn depth_truncation_changes_output_moderately() {
        let k = ScalParCKernel::small(8);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_TREE_DEPTH, Perforation::TruncateBy(3)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 60.0, "inaccuracy {inacc}%");
        assert!(approx.cost.ops <= precise.cost.ops);
    }

    #[test]
    fn row_sampling_reduces_bytes() {
        let k = ScalParCKernel::small(8);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.5));
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched);
    }
}
