//! Naive Bayesian classifier training and scoring.
//!
//! The MineBench Bayesian application trains a naive Bayes classifier over a discretized
//! feature matrix and scores a held-out set. The paper highlights Bayesian as having a very
//! rich approximation design space (8 pareto variants); accordingly this kernel exposes
//! many knobs: perforate training samples (site 0), perforate feature accumulation
//! (site 1), perforate scoring (site 2), sample input, and reduce precision.

use crate::data::CountMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: training-sample loop.
pub const SITE_TRAIN_SAMPLES: u32 = 0;
/// Perforable site: per-feature accumulation loop.
pub const SITE_FEATURES: u32 = 1;
/// Perforable site: scoring loop.
pub const SITE_SCORING: u32 = 2;

/// Naive Bayes training/scoring kernel.
#[derive(Debug, Clone)]
pub struct BayesianKernel {
    data: CountMatrix,
    classes: usize,
}

impl BayesianKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, rows: usize, cols: usize, classes: usize) -> Self {
        Self {
            data: CountMatrix::synthetic(seed, rows, cols, classes),
            classes,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 400, 40, 4)
    }

    fn train_and_score(&self, config: &ApproxConfig) -> (Vec<u32>, Cost) {
        let rows = self.data.rows;
        let cols = self.data.cols;
        let train_perf = config.perforation(SITE_TRAIN_SAMPLES);
        let feat_perf = config.perforation(SITE_FEATURES);
        let score_perf = config.perforation(SITE_SCORING);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        // Class of row r is r % classes by construction of the synthetic data.
        let train_rows = rows * 3 / 4;

        // Train: per-class feature likelihoods with Laplace smoothing.
        let mut class_totals = vec![1.0f64; self.classes];
        let mut feature_counts = vec![1.0f64; self.classes * cols];
        for r in 0..train_rows {
            if !train_perf.keeps(r, train_rows) || !sample.keeps(r, train_rows) {
                continue;
            }
            let class = r % self.classes;
            for c in 0..cols {
                if !feat_perf.keeps(c, cols) {
                    continue;
                }
                let v = self.data.at(r, c);
                feature_counts[class * cols + c] += v;
                class_totals[class] += v;
                cost.ops += 3.0 * precision.op_cost();
                cost.bytes_touched += 16.0;
            }
        }
        let log_likelihood: Vec<f64> = (0..self.classes * cols)
            .map(|i| {
                let class = i / cols;
                precision.quantize((feature_counts[i] / class_totals[class]).ln())
            })
            .collect();
        cost.ops += (self.classes * cols) as f64 * 2.0;

        // Score held-out rows.
        let mut predictions = Vec::with_capacity(rows - train_rows);
        for r in train_rows..rows {
            if !score_perf.keeps(r - train_rows, rows - train_rows) {
                // Skipped scoring: predict the majority class (0).
                predictions.push(0u32);
                continue;
            }
            let mut best_class = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for class in 0..self.classes {
                let mut score = 0.0;
                for c in 0..cols {
                    score += self.data.at(r, c) * log_likelihood[class * cols + c];
                    cost.ops += 2.0 * precision.op_cost();
                    cost.bytes_touched += 16.0;
                }
                let score = precision.quantize(score);
                if score > best_score {
                    best_score = score;
                    best_class = class;
                }
            }
            predictions.push(best_class as u32);
        }
        (predictions, cost)
    }
}

impl ApproxKernel for BayesianKernel {
    fn name(&self) -> &'static str {
        "bayesian"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        // Training rows rotate through the classes (row r has class r % classes), so a
        // strided KeepEveryNth would systematically starve some classes. Hash-based
        // KeepFraction perforation keeps the class balance intact.
        for p in [2u32, 3, 4, 6, 8] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(
                        SITE_TRAIN_SAMPLES,
                        Perforation::KeepFraction(1.0 / p as f64),
                    )
                    .with_label(format!("train-keep1of{p}")),
            );
        }
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_FEATURES, Perforation::KeepEveryNth(p))
                    .with_label(format!("features-keep1of{p}")),
            );
        }
        for f in [0.8, 0.6, 0.4, 0.25] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::Fixed16)
                .with_label("fixed16"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_TRAIN_SAMPLES, Perforation::KeepEveryNth(2))
                .with_precision(Precision::F32)
                .with_label("train-keep1of2+f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (predictions, cost) = self.train_and_score(config);
        KernelRun::new(cost, KernelOutput::Labels(predictions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_classifier_beats_chance() {
        let k = BayesianKernel::small(2);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Labels(pred) => {
                let test_start = 400 * 3 / 4;
                let correct = pred
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| (test_start + i) % 4 == **p as usize)
                    .count();
                let accuracy = correct as f64 / pred.len() as f64;
                assert!(
                    accuracy > 0.4,
                    "accuracy {accuracy} should beat 0.25 chance"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn rich_candidate_space() {
        // The paper singles out Bayesian for its rich design space (8 pareto variants).
        let k = BayesianKernel::small(2);
        assert!(k.candidate_configs().len() >= 12);
    }

    #[test]
    fn training_perforation_reduces_work() {
        let k = BayesianKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_TRAIN_SAMPLES, Perforation::KeepFraction(0.25)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.8);
    }

    #[test]
    fn mild_perforation_keeps_predictions_similar() {
        let k = BayesianKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_TRAIN_SAMPLES, Perforation::KeepFraction(0.5)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 30.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn scoring_perforation_degrades_more() {
        let k = BayesianKernel::small(2);
        let precise = k.run_precise();
        let skipped = k.run(
            &ApproxConfig::precise().with_perforation(SITE_SCORING, Perforation::KeepEveryNth(2)),
        );
        // Skipping half of the scoring loop forces default predictions for those rows.
        let inacc = skipped.output.inaccuracy_vs(&precise.output);
        assert!(inacc > 10.0);
    }
}
