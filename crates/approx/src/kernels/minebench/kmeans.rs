//! K-means — Lloyd's-algorithm clustering.
//!
//! Approximation knobs: perforate the refinement iterations (site 0), perforate the
//! per-point assignment loop / sample the input (site 1 and input sampling), and reduce
//! precision of the distance arithmetic.

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: outer refinement iterations.
pub const SITE_ITERATIONS: u32 = 0;
/// Perforable site: per-point assignment loop.
pub const SITE_ASSIGNMENT: u32 = 1;

/// Lloyd's k-means clustering kernel.
#[derive(Debug, Clone)]
pub struct KMeansKernel {
    points: PointCloud,
    k: usize,
    iterations: usize,
}

impl KMeansKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_points: usize, dims: usize, k: usize, iterations: usize) -> Self {
        Self {
            points: PointCloud::gaussian_mixture(seed, n_points, dims, k),
            k,
            iterations,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 800, 4, 6, 15)
    }

    fn cluster(&self, config: &ApproxConfig) -> (Vec<u32>, Cost) {
        let n = self.points.len();
        let dims = self.points.dims;
        let iter_perf = config.perforation(SITE_ITERATIONS);
        let assign_perf = config.perforation(SITE_ASSIGNMENT);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        // Initial centroids: evenly-spaced input points.
        let mut centroids: Vec<Vec<f64>> = (0..self.k)
            .map(|c| self.points.point(c * n / self.k).to_vec())
            .collect();
        let mut labels = vec![0u32; n];

        for it in 0..self.iterations {
            if !iter_perf.keeps(it, self.iterations) {
                continue;
            }
            let mut sums = vec![vec![0.0f64; dims]; self.k];
            let mut counts = vec![0usize; self.k];
            for i in 0..n {
                if !sample.keeps(i, n) || !assign_perf.keeps(i, n) {
                    continue;
                }
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = precision.quantize(self.points.dist2(i, centroid));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                    cost.ops += (3 * dims) as f64 * precision.op_cost();
                    cost.bytes_touched += dims as f64 * 8.0;
                }
                labels[i] = best as u32;
                counts[best] += 1;
                for d in 0..dims {
                    sums[best][d] += self.points.point(i)[d];
                }
                cost.ops += dims as f64;
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    for d in 0..dims {
                        centroids[c][d] = precision.quantize(sums[c][d] / counts[c] as f64);
                    }
                }
            }
        }
        // Final full assignment so skipped points still receive their nearest centroid —
        // this is the output users consume and is never perforated (the original code does
        // one final labelling pass too).
        for i in 0..n {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = self.points.dist2(i, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            labels[i] = best as u32;
            cost.ops += (self.k * dims) as f64 * 0.5;
        }
        (labels, cost)
    }
}

impl ApproxKernel for KMeansKernel {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4, 5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(p))
                    .with_label(format!("iters-truncate{p}")),
            );
        }
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ASSIGNMENT, Perforation::KeepEveryNth(p))
                    .with_label(format!("assign-keep1of{p}")),
            );
        }
        for f in [0.6, 0.4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (labels, cost) = self.cluster(config);
        KernelRun::new(cost, KernelOutput::Labels(labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_clustering_recovers_structure() {
        let k = KMeansKernel::small(1);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Labels(labels) => {
                assert_eq!(labels.len(), 800);
                // Points sharing a ground-truth cluster should mostly share a label.
                let mut agree = 0usize;
                let mut total = 0usize;
                for i in (0..800).step_by(13) {
                    for j in (0..800).step_by(17) {
                        if i == j {
                            continue;
                        }
                        if k.points.true_labels[i] == k.points.true_labels[j] {
                            total += 1;
                            if labels[i] == labels[j] {
                                agree += 1;
                            }
                        }
                    }
                }
                assert!(
                    agree as f64 / total as f64 > 0.6,
                    "clustering lost structure"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn iteration_truncation_reduces_work() {
        let k = KMeansKernel::small(1);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(3)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.6);
    }

    #[test]
    fn truncated_iterations_keep_labels_mostly_stable() {
        let k = KMeansKernel::small(1);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_ITERATIONS, Perforation::TruncateBy(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 30.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn sampling_reduces_bytes() {
        let k = KMeansKernel::small(1);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.4));
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched * 0.7);
    }
}
