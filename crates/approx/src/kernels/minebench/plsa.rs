//! PLSA — probabilistic latent semantic analysis via expectation-maximization.
//!
//! PLSA factorizes a document-term count matrix into topic distributions with EM. The
//! paper highlights PLSA (like Bayesian) as offering a rich approximation space with 8
//! pareto variants. Knobs: perforate EM iterations (site 0), perforate the document loop
//! inside each E-step (site 1), perforate the term loop (site 2), sample documents, reduce
//! precision.

use crate::data::CountMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: EM iterations.
pub const SITE_EM_ITERATIONS: u32 = 0;
/// Perforable site: document loop.
pub const SITE_DOCUMENTS: u32 = 1;
/// Perforable site: term loop.
pub const SITE_TERMS: u32 = 2;

/// PLSA topic-modelling kernel.
#[derive(Debug, Clone)]
pub struct PlsaKernel {
    data: CountMatrix,
    topics: usize,
    iterations: usize,
}

impl PlsaKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, docs: usize, terms: usize, topics: usize, iterations: usize) -> Self {
        Self {
            data: CountMatrix::synthetic(seed, docs, terms, topics),
            topics,
            iterations,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 120, 50, 5, 14)
    }

    fn factorize(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let docs = self.data.rows;
        let terms = self.data.cols;
        let k = self.topics;
        let iter_perf = config.perforation(SITE_EM_ITERATIONS);
        let doc_perf = config.perforation(SITE_DOCUMENTS);
        let term_perf = config.perforation(SITE_TERMS);
        let doc_sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        // Initialize p(topic|doc) and p(term|topic) deterministically.
        let mut p_td = vec![1.0 / k as f64; docs * k];
        let mut p_wt: Vec<f64> = (0..k * terms)
            .map(|i| {
                let t = i / terms;
                let w = i % terms;
                1.0 / terms as f64 + if (w + t).is_multiple_of(k) { 0.01 } else { 0.0 }
            })
            .collect();
        // Normalize p_wt rows.
        for t in 0..k {
            let s: f64 = p_wt[t * terms..(t + 1) * terms].iter().sum();
            for w in 0..terms {
                p_wt[t * terms + w] /= s;
            }
        }

        for it in 0..self.iterations {
            if !iter_perf.keeps(it, self.iterations) {
                continue;
            }
            let mut new_p_wt = vec![1e-9f64; k * terms];
            let mut new_p_td = vec![1e-9f64; docs * k];
            for d in 0..docs {
                if !doc_perf.keeps(d, docs) || !doc_sample.keeps(d, docs) {
                    continue;
                }
                for w in 0..terms {
                    if !term_perf.keeps(w, terms) {
                        continue;
                    }
                    let count = self.data.at(d, w);
                    if count <= 0.0 {
                        continue;
                    }
                    // E-step: responsibility of each topic for (d, w).
                    let mut denom = 0.0;
                    for t in 0..k {
                        denom += p_td[d * k + t] * p_wt[t * terms + w];
                    }
                    let denom = denom.max(1e-12);
                    for t in 0..k {
                        let resp =
                            precision.quantize(p_td[d * k + t] * p_wt[t * terms + w] / denom);
                        new_p_wt[t * terms + w] += count * resp;
                        new_p_td[d * k + t] += count * resp;
                    }
                    cost.ops += (4 * k) as f64 * precision.op_cost();
                    cost.bytes_touched += (2 * k) as f64 * 8.0;
                }
            }
            // M-step: renormalize.
            for t in 0..k {
                let s: f64 = new_p_wt[t * terms..(t + 1) * terms].iter().sum();
                for w in 0..terms {
                    p_wt[t * terms + w] =
                        precision.quantize(new_p_wt[t * terms + w] / s.max(1e-12));
                }
            }
            for d in 0..docs {
                let s: f64 = new_p_td[d * k..(d + 1) * k].iter().sum();
                if s > 1e-8 {
                    for t in 0..k {
                        p_td[d * k + t] = precision.quantize(new_p_td[d * k + t] / s);
                    }
                }
            }
            cost.ops += (k * terms + docs * k) as f64;
        }
        // Output: the topic-term matrix (the model downstream consumers use).
        (p_wt, cost)
    }
}

impl ApproxKernel for PlsaKernel {
    fn name(&self) -> &'static str {
        "plsa"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4, 5, 7] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_EM_ITERATIONS, Perforation::TruncateBy(p))
                    .with_label(format!("em-truncate{p}")),
            );
        }
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_DOCUMENTS, Perforation::KeepEveryNth(p))
                    .with_label(format!("docs-keep1of{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_TERMS, Perforation::KeepEveryNth(p))
                    .with_label(format!("terms-keep1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("docs{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_EM_ITERATIONS, Perforation::TruncateBy(2))
                .with_precision(Precision::F32)
                .with_label("em-truncate2+f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (model, cost) = self.factorize(config);
        KernelRun::new(cost, KernelOutput::Vector(model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_model_rows_are_distributions() {
        let k = PlsaKernel::small(6);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(p_wt) => {
                assert_eq!(p_wt.len(), 5 * 50);
                for t in 0..5 {
                    let s: f64 = p_wt[t * 50..(t + 1) * 50].iter().sum();
                    assert!((s - 1.0).abs() < 1e-6, "topic {t} sums to {s}");
                }
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn rich_candidate_space() {
        let k = PlsaKernel::small(6);
        assert!(k.candidate_configs().len() >= 12);
    }

    #[test]
    fn em_truncation_reduces_work_roughly_proportionally() {
        let k = PlsaKernel::small(6);
        let precise = k.run_precise();
        let half = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_EM_ITERATIONS, Perforation::TruncateBy(2)),
        );
        let ratio = half.cost.ops / precise.cost.ops;
        assert!(ratio < 0.7, "ratio {ratio}");
    }

    #[test]
    fn mild_truncation_error_is_smaller_than_aggressive() {
        let k = PlsaKernel::small(6);
        let precise = k.run_precise();
        let mild = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_EM_ITERATIONS, Perforation::TruncateBy(2)),
        );
        let aggressive = k.run(
            &ApproxConfig::precise()
                .with_perforation(SITE_EM_ITERATIONS, Perforation::TruncateBy(7)),
        );
        let e_mild = mild.output.inaccuracy_vs(&precise.output);
        let e_aggr = aggressive.output.inaccuracy_vs(&precise.output);
        assert!(
            e_mild <= e_aggr + 1e-9,
            "mild {e_mild}% vs aggressive {e_aggr}%"
        );
    }
}
