//! GeneNet — gene regulatory network structure learning.
//!
//! GeneNet scores candidate regulatory links between genes from expression data (mutual
//! information / correlation over expression profiles) and keeps the strongest edges.
//! Knobs: perforate the candidate gene-pair loop (site 0), perforate the per-sample
//! correlation accumulation (site 1), sample the expression profiles, reduce precision.

use crate::data::CountMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: candidate gene-pair loop.
pub const SITE_PAIRS: u32 = 0;
/// Perforable site: per-sample accumulation loop.
pub const SITE_SAMPLES: u32 = 1;

/// Gene regulatory network inference kernel.
#[derive(Debug, Clone)]
pub struct GeneNetKernel {
    // Rows = samples (conditions), cols = genes.
    expression: CountMatrix,
    edges_to_keep: usize,
}

impl GeneNetKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, samples: usize, genes: usize) -> Self {
        Self {
            expression: CountMatrix::synthetic(seed, samples, genes, 6),
            edges_to_keep: genes * 2,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 80, 60)
    }

    fn infer(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let samples = self.expression.rows;
        let genes = self.expression.cols;
        let pair_perf = config.perforation(SITE_PAIRS);
        let sample_perf = config.perforation(SITE_SAMPLES);
        let subsample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        // Per-gene means for centering.
        let mut means = vec![0.0f64; genes];
        for g in 0..genes {
            for s in 0..samples {
                means[g] += self.expression.at(s, g);
            }
            means[g] /= samples as f64;
            cost.ops += samples as f64;
        }

        // Score all gene pairs by absolute Pearson correlation.
        let mut scores: Vec<(usize, usize, f64)> = Vec::new();
        let total_pairs = genes * (genes - 1) / 2;
        let mut pair_index = 0usize;
        for a in 0..genes {
            for b in (a + 1)..genes {
                let keep = pair_perf.keeps(pair_index, total_pairs);
                pair_index += 1;
                if !keep {
                    continue;
                }
                let mut num = 0.0;
                let mut da = 0.0;
                let mut db = 0.0;
                for s in 0..samples {
                    if !sample_perf.keeps(s, samples) || !subsample.keeps(s, samples) {
                        continue;
                    }
                    let xa = self.expression.at(s, a) - means[a];
                    let xb = self.expression.at(s, b) - means[b];
                    num += xa * xb;
                    da += xa * xa;
                    db += xb * xb;
                    cost.ops += 6.0 * precision.op_cost();
                    cost.bytes_touched += 16.0;
                }
                let denom = (da * db).sqrt().max(1e-12);
                let corr = precision.quantize((num / denom).abs());
                scores.push((a, b, corr));
            }
        }

        // Keep the strongest edges; output is a per-gene degree vector of the resulting
        // network, a stable structural summary.
        // NaN-safe descending sort: a NaN correlation (all-constant expression rows
        // yield 0/0) must sort deterministically instead of panicking. `|corr|` carries
        // the positive NaN bit pattern, which a plain reversed `total_cmp` would order
        // *first* — letting a degenerate pair claim an edge ahead of every real
        // correlation — so NaN is demoted explicitly.
        scores.sort_by(|x, y| match (x.2.is_nan(), y.2.is_nan()) {
            (false, false) => y.2.total_cmp(&x.2),
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
        });
        let mut degrees = vec![0.0f64; genes];
        for &(a, b, _) in scores.iter().take(self.edges_to_keep) {
            degrees[a] += 1.0;
            degrees[b] += 1.0;
        }
        cost.ops += scores.len() as f64 * (scores.len() as f64).log2().max(1.0) * 0.1;
        (degrees, cost)
    }
}

impl ApproxKernel for GeneNetKernel {
    fn name(&self) -> &'static str {
        "genenet"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_PAIRS, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("pairs-skip1of{p}")),
            );
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_SAMPLES, Perforation::KeepEveryNth(p))
                    .with_label(format!("samples-keep1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (degrees, cost) = self.infer(config);
        KernelRun::new(cost, KernelOutput::Vector(degrees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_network_has_expected_edge_mass() {
        let k = GeneNetKernel::small(7);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(deg) => {
                assert_eq!(deg.len(), 60);
                let total: f64 = deg.iter().sum();
                assert!((total - 2.0 * k.edges_to_keep as f64).abs() < 1e-9);
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn pair_perforation_reduces_work() {
        let k = GeneNetKernel::small(7);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_PAIRS, Perforation::SkipEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn sample_perforation_keeps_network_similar() {
        let k = GeneNetKernel::small(7);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_SAMPLES, Perforation::KeepEveryNth(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 70.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn determinism() {
        let k = GeneNetKernel::small(7);
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }

    #[test]
    fn nan_expression_data_does_not_panic_or_claim_edges() {
        let mut k = GeneNetKernel::small(7);
        // Poison one gene's whole expression profile with a runtime-style NaN: every
        // pair involving it then scores NaN. Pre-total_cmp this panicked the sort;
        // a naive reversed total_cmp would instead sort |NaN| *first* and hand the
        // degenerate gene the top edges.
        let poisoned = 13;
        let genes = k.expression.cols;
        for s in 0..k.expression.rows {
            k.expression.counts[s * genes + poisoned] = -f64::NAN;
        }
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(degrees) => {
                assert_eq!(degrees.len(), genes);
                // 59 NaN pairs vs 1711 real ones for 120 edge slots: the poisoned
                // gene must win nothing.
                assert_eq!(
                    degrees[poisoned], 0.0,
                    "NaN-scored pairs must never out-rank real correlations"
                );
                let total: f64 = degrees.iter().sum();
                assert!((total - 2.0 * k.edges_to_keep as f64).abs() < 1e-9);
            }
            _ => panic!("unexpected output"),
        }
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }
}
