//! SNP — single-nucleotide-polymorphism association testing.
//!
//! The MineBench SNP application scans a genotype matrix for markers associated with a
//! phenotype (chi-square style association statistics). The paper notes SNP's approximate
//! variants (perforation plus synchronization elision) are particularly effective at
//! reducing LLC contention. Knobs: perforate the marker loop (site 0), perforate the sample
//! loop (site 1), elide the shared contingency-table synchronization, reduce precision.

use crate::data::GenotypeMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision, SyncElision};

/// Perforable site: marker (SNP) loop.
pub const SITE_MARKERS: u32 = 0;
/// Perforable site: per-sample accumulation loop.
pub const SITE_SAMPLES: u32 = 1;

/// SNP association-testing kernel.
#[derive(Debug, Clone)]
pub struct SnpKernel {
    data: GenotypeMatrix,
}

impl SnpKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, samples: usize, markers: usize) -> Self {
        Self {
            data: GenotypeMatrix::synthetic(seed, samples, markers),
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 300, 400)
    }

    fn associate(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let samples = self.data.samples;
        let markers = self.data.markers;
        let marker_perf = config.perforation(SITE_MARKERS);
        let sample_perf = config.perforation(SITE_SAMPLES);
        let subsample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let sync = config.sync;
        let mut cost = Cost::default();

        let mut stats = vec![0.0f64; markers];
        for m in 0..markers {
            if !marker_perf.keeps(m, markers) {
                // Skipped markers keep a zero statistic (treated as "not associated").
                continue;
            }
            // 3 genotype classes × 2 phenotype classes contingency table.
            let mut table = [[0.0f64; 2]; 3];
            let mut considered = 0.0;
            for s in 0..samples {
                if !sample_perf.keeps(s, samples) || !subsample.keeps(s, samples) {
                    continue;
                }
                // With elided synchronization, a fraction of table increments is lost
                // (racy updates to the shared contingency table).
                if !sync.refreshes(s + m) {
                    continue;
                }
                let g = self.data.genotype(s, m) as usize;
                let p = self.data.phenotypes[s] as usize;
                table[g][p] += 1.0;
                considered += 1.0;
                cost.ops += 4.0 * precision.op_cost();
                cost.bytes_touched += 2.0;
            }
            if considered < 4.0 {
                continue;
            }
            // Chi-square statistic.
            let row_sums: Vec<f64> = table.iter().map(|r| r[0] + r[1]).collect();
            let col_sums = [
                table.iter().map(|r| r[0]).sum::<f64>(),
                table.iter().map(|r| r[1]).sum::<f64>(),
            ];
            let mut chi2 = 0.0;
            for (g, row) in table.iter().enumerate() {
                for (p, &obs) in row.iter().enumerate() {
                    let expected = row_sums[g] * col_sums[p] / considered;
                    if expected > 0.0 {
                        chi2 += (obs - expected) * (obs - expected) / expected;
                    }
                    cost.ops += 5.0 * precision.op_cost();
                }
            }
            stats[m] = precision.quantize(chi2);
        }
        (stats, cost)
    }
}

impl ApproxKernel for SnpKernel {
    fn name(&self) -> &'static str {
        "snp"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_SAMPLES, Perforation::KeepEveryNth(p))
                    .with_label(format!("samples-keep1of{p}")),
            );
        }
        for s in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_sync(SyncElision::with_staleness(s))
                    .with_label(format!("elide-sync-stale{s}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_SAMPLES, Perforation::KeepEveryNth(2))
                .with_sync(SyncElision::with_staleness(2))
                .with_label("samples-keep1of2+stale2"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (stats, cost) = self.associate(config);
        KernelRun::new(cost, KernelOutput::Vector(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_markers_have_higher_statistics() {
        let k = SnpKernel::small(5);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(stats) => {
                assert_eq!(stats.len(), 400);
                let causal_mean: f64 =
                    stats.iter().step_by(20).sum::<f64>() / (stats.len() / 20) as f64;
                let all_mean: f64 = stats.iter().sum::<f64>() / stats.len() as f64;
                assert!(
                    causal_mean > all_mean,
                    "causal markers ({causal_mean}) should stand out over background ({all_mean})"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn sample_perforation_reduces_work_substantially() {
        let k = SnpKernel::small(5);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_SAMPLES, Perforation::KeepEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.7);
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched * 0.7);
    }

    #[test]
    fn sync_elision_reduces_work_with_moderate_error() {
        let k = SnpKernel::small(5);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_sync(SyncElision::with_staleness(2)));
        assert!(approx.cost.ops < precise.cost.ops);
        // Chi-square statistics are small in magnitude, so the per-element relative-error
        // metric is harsh; the bound here only guards against completely broken output.
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 85.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn candidate_configs_cover_multiple_techniques() {
        let cfgs = SnpKernel::small(5).candidate_configs();
        assert!(cfgs.iter().any(|c| !c.sync.is_precise()));
        assert!(cfgs.iter().any(|c| c.input_sampling.is_some()));
        assert!(cfgs.iter().any(|c| !c.precision.is_precise()));
    }
}
