//! SEMPHY — maximum-likelihood phylogenetic tree reconstruction.
//!
//! SEMPHY alternates between estimating a pairwise distance matrix from aligned sequences
//! and improving the tree (structural EM). The kernel computes evolutionary distances from
//! synthetic related sequences, builds a neighbour-joining-style tree, and refines branch
//! lengths iteratively. Knobs: perforate the distance-matrix loop (site 0), perforate the
//! refinement iterations (site 1), sample sequence columns, reduce precision.

use crate::data::{related_sequences, DNA_ALPHABET};
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: pairwise distance estimation.
pub const SITE_DISTANCES: u32 = 0;
/// Perforable site: branch-length refinement iterations.
pub const SITE_REFINEMENT: u32 = 1;

/// Phylogenetic-reconstruction kernel.
#[derive(Debug, Clone)]
pub struct SemphyKernel {
    sequences: Vec<Vec<u8>>,
    refinement_iters: usize,
}

impl SemphyKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, taxa: usize, seq_len: usize) -> Self {
        Self {
            sequences: related_sequences(seed, taxa, seq_len, 0.08, &DNA_ALPHABET),
            refinement_iters: 12,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 14, 600)
    }

    fn reconstruct(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.sequences.len();
        let dist_perf = config.perforation(SITE_DISTANCES);
        let refine_perf = config.perforation(SITE_REFINEMENT);
        let col_sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();

        // Pairwise Jukes-Cantor-style distances.
        let mut dist = vec![0.0f64; n * n];
        let total_pairs = n * (n - 1) / 2;
        let mut pair_index = 0usize;
        for a in 0..n {
            for b in (a + 1)..n {
                let keep = dist_perf.keeps(pair_index, total_pairs);
                pair_index += 1;
                let len = self.sequences[a].len().min(self.sequences[b].len());
                let d = if keep && len > 0 {
                    let mut mismatches = 0.0f64;
                    let mut compared = 0.0f64;
                    for i in 0..len {
                        if !col_sample.keeps(i, len) {
                            continue;
                        }
                        compared += 1.0;
                        if self.sequences[a][i] != self.sequences[b][i] {
                            mismatches += 1.0;
                        }
                        cost.ops += 2.0 * precision.op_cost();
                        cost.bytes_touched += 2.0;
                    }
                    let p = (mismatches / compared.max(1.0)).min(0.70);
                    precision.quantize(-0.75 * (1.0 - 4.0 * p / 3.0).ln())
                } else {
                    // Skipped pair: fall back to a crude constant distance.
                    0.5
                };
                dist[a * n + b] = d;
                dist[b * n + a] = d;
            }
        }

        // Greedy neighbour-joining-like clustering: repeatedly join the closest pair and
        // record the join distance (these joins are the tree's branch lengths).
        let mut active: Vec<usize> = (0..n).collect();
        let mut branch_lengths = Vec::new();
        let mut working = dist.clone();
        while active.len() > 1 {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for (ia, &a) in active.iter().enumerate() {
                for &b in active.iter().skip(ia + 1) {
                    let d = working[a * n + b];
                    if d < best.2 {
                        best = (a, b, d);
                    }
                    cost.ops += 1.0;
                }
            }
            let (a, b, d) = best;
            branch_lengths.push(d / 2.0);
            // Merge b into a (average linkage).
            for &c in &active {
                if c != a && c != b {
                    let nd = (working[a * n + c] + working[b * n + c]) / 2.0;
                    working[a * n + c] = nd;
                    working[c * n + a] = nd;
                    cost.ops += 3.0 * precision.op_cost();
                }
            }
            active.retain(|&x| x != b);
        }

        // Iterative branch-length refinement (perforable): smooth adjacent branch lengths
        // toward local consistency (a proxy for likelihood optimization).
        for it in 0..self.refinement_iters {
            if !refine_perf.keeps(it, self.refinement_iters) {
                continue;
            }
            for i in 1..branch_lengths.len() {
                let avg = (branch_lengths[i - 1] + branch_lengths[i]) / 2.0;
                branch_lengths[i] = precision.quantize(branch_lengths[i] * 0.8 + avg * 0.2);
                cost.ops += 4.0 * precision.op_cost();
            }
        }
        (branch_lengths, cost)
    }
}

impl ApproxKernel for SemphyKernel {
    fn name(&self) -> &'static str {
        "semphy"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_DISTANCES, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("dist-skip1of{p}")),
            );
        }
        for p in [2u32, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_REFINEMENT, Perforation::TruncateBy(p))
                    .with_label(format!("refine-truncate{p}")),
            );
        }
        for f in [0.6, 0.4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("cols{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (branches, cost) = self.reconstruct(config);
        KernelRun::new(cost, KernelOutput::Vector(branches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_tree_has_expected_join_count() {
        let k = SemphyKernel::small(3);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(branches) => {
                assert_eq!(branches.len(), 13, "n-1 joins for n taxa");
                assert!(branches.iter().all(|b| b.is_finite() && *b >= 0.0));
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn column_sampling_reduces_work() {
        let k = SemphyKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.4));
        assert!(approx.cost.ops < precise.cost.ops * 0.8);
    }

    #[test]
    fn column_sampling_has_small_error() {
        let k = SemphyKernel::small(3);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.6));
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 40.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn distance_perforation_is_cheaper_but_noisier_than_sampling() {
        let k = SemphyKernel::small(3);
        let precise = k.run_precise();
        let perf = k.run(
            &ApproxConfig::precise().with_perforation(SITE_DISTANCES, Perforation::SkipEveryNth(2)),
        );
        assert!(perf.cost.ops < precise.cost.ops);
    }
}
