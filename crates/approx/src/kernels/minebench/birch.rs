//! BIRCH — clustering-feature (CF) tree construction for hierarchical clustering.
//!
//! BIRCH summarizes a point stream into clustering features (count, linear sum, squared
//! sum) organized in a tree, then clusters the leaf CFs. The kernel builds a flat CF layer
//! with a distance threshold and clusters the CF centroids. Knobs: perforate the insertion
//! stream (site 0, equivalent to input sampling), perforate the leaf refinement loop
//! (site 1), reduce precision.

use crate::data::PointCloud;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: point-insertion stream.
pub const SITE_INSERTION: u32 = 0;
/// Perforable site: leaf refinement loop.
pub const SITE_REFINEMENT: u32 = 1;

#[derive(Debug, Clone)]
struct ClusteringFeature {
    count: f64,
    linear_sum: Vec<f64>,
}

impl ClusteringFeature {
    fn centroid(&self) -> Vec<f64> {
        self.linear_sum
            .iter()
            .map(|s| s / self.count.max(1.0))
            .collect()
    }
}

/// BIRCH CF-tree clustering kernel.
#[derive(Debug, Clone)]
pub struct BirchKernel {
    points: PointCloud,
    threshold: f64,
    refinement_passes: usize,
}

impl BirchKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, n_points: usize, dims: usize, threshold: f64) -> Self {
        Self {
            points: PointCloud::gaussian_mixture(seed, n_points, dims, 8),
            threshold,
            refinement_passes: 4,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 700, 4, 2.0)
    }

    fn build(&self, config: &ApproxConfig) -> (Vec<f64>, Cost) {
        let n = self.points.len();
        let dims = self.points.dims;
        let insert_perf = config.perforation(SITE_INSERTION);
        let refine_perf = config.perforation(SITE_REFINEMENT);
        let sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut cost = Cost::default();
        let t2 = self.threshold * self.threshold;

        let mut features: Vec<ClusteringFeature> = Vec::new();
        for i in 0..n {
            if !insert_perf.keeps(i, n) || !sample.keeps(i, n) {
                continue;
            }
            let p = self.points.point(i);
            // Find the nearest CF.
            let mut best: Option<(usize, f64)> = None;
            for (fi, f) in features.iter().enumerate() {
                let c = f.centroid();
                let d: f64 = p.iter().zip(c.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                let d = precision.quantize(d);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((fi, d));
                }
                cost.ops += (3 * dims) as f64 * precision.op_cost();
                cost.bytes_touched += dims as f64 * 8.0;
            }
            match best {
                Some((fi, d)) if d <= t2 => {
                    let f = &mut features[fi];
                    f.count += 1.0;
                    for (s, v) in f.linear_sum.iter_mut().zip(p.iter()) {
                        *s += v;
                    }
                }
                _ => features.push(ClusteringFeature {
                    count: 1.0,
                    linear_sum: p.to_vec(),
                }),
            }
            cost.ops += dims as f64;
        }

        // Refinement: merge nearby CFs for a few passes.
        for pass in 0..self.refinement_passes {
            if !refine_perf.keeps(pass, self.refinement_passes) {
                continue;
            }
            let mut merged = true;
            while merged {
                merged = false;
                'outer: for a in 0..features.len() {
                    for b in (a + 1)..features.len() {
                        let ca = features[a].centroid();
                        let cb = features[b].centroid();
                        let d: f64 = ca
                            .iter()
                            .zip(cb.iter())
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum();
                        cost.ops += (3 * dims) as f64 * precision.op_cost();
                        if d < t2 * 0.5 {
                            let fb = features.remove(b);
                            let fa = &mut features[a];
                            fa.count += fb.count;
                            for (s, v) in fa.linear_sum.iter_mut().zip(fb.linear_sum.iter()) {
                                *s += v;
                            }
                            merged = true;
                            break 'outer;
                        }
                    }
                }
            }
        }

        // Output: sorted CF centroid norms (a stable, order-insensitive summary of the
        // clustering structure).
        let mut norms: Vec<f64> = features
            .iter()
            .map(|f| f.centroid().iter().map(|x| x * x).sum::<f64>().sqrt())
            .collect();
        // `total_cmp`: a NaN centroid norm (degenerate feature from NaN input data) must
        // sort deterministically instead of panicking the whole run.
        norms.sort_by(|a, b| a.total_cmp(b));
        (norms, cost)
    }
}

impl ApproxKernel for BirchKernel {
    fn name(&self) -> &'static str {
        "birch"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_INSERTION, Perforation::SkipEveryNth(p.max(2)))
                    .with_label(format!("insert-skip1of{p}")),
            );
        }
        for f in [0.7, 0.5] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("sample{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_perforation(SITE_REFINEMENT, Perforation::TruncateBy(2))
                .with_label("refine-truncate2"),
        );
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (norms, cost) = self.build(config);
        KernelRun::new(cost, KernelOutput::Vector(norms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_run_produces_multiple_clusters() {
        let run = BirchKernel::small(4).run_precise();
        match &run.output {
            KernelOutput::Vector(norms) => {
                assert!(
                    norms.len() >= 4,
                    "expected several CFs, got {}",
                    norms.len()
                );
                assert!(
                    norms.windows(2).all(|w| w[0] <= w[1]),
                    "norms must be sorted"
                );
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn insertion_perforation_reduces_work() {
        let k = BirchKernel::small(4);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_INSERTION, Perforation::SkipEveryNth(2)),
        );
        assert!(approx.cost.ops < precise.cost.ops);
    }

    #[test]
    fn sampling_keeps_cluster_structure_roughly() {
        let k = BirchKernel::small(4);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.7));
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 60.0, "inaccuracy {inacc}%");
    }

    #[test]
    fn determinism() {
        let k = BirchKernel::small(4);
        assert_eq!(k.run_precise().output, k.run_precise().output);
    }

    #[test]
    fn nan_input_points_do_not_panic_the_centroid_sort() {
        let mut k = BirchKernel::small(4);
        // Runtime NaN (e.g. 0.0/0.0 on x86-64) carries the sign bit; exercise that
        // exact bit pattern, not just the +NaN constant.
        let runtime_nan = -f64::NAN;
        let dims = k.points.dims;
        for d in 0..dims {
            k.points.data[d] = runtime_nan; // poison the first point entirely
        }
        k.points.data[5 * dims] = f64::NAN; // and one coordinate of another
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Vector(norms) => {
                assert!(!norms.is_empty());
                // Real norms stay sorted ascending; NaN norms collect at the ends
                // (total_cmp orders -NaN before and +NaN after every real) instead
                // of panicking the sort (the pre-total_cmp behaviour).
                let real: Vec<f64> = norms.iter().copied().filter(|n| !n.is_nan()).collect();
                assert!(!real.is_empty(), "real clusters survive the poisoning");
                assert!(real.windows(2).all(|w| w[0] <= w[1]));
                let first = norms.iter().position(|n| !n.is_nan()).unwrap();
                let last = norms.iter().rposition(|n| !n.is_nan()).unwrap();
                assert!(
                    norms[first..=last].iter().all(|n| !n.is_nan()),
                    "NaNs are confined to the ends of the sorted norms"
                );
            }
            _ => panic!("unexpected output"),
        }
        // Still deterministic with NaN in play (bitwise — NaN != NaN under PartialEq).
        let again = k.run_precise();
        match (&run.output, &again.output) {
            (KernelOutput::Vector(a), KernelOutput::Vector(b)) => {
                assert_eq!(a.len(), b.len());
                assert!(a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()));
            }
            _ => panic!("unexpected output"),
        }
    }
}
