//! MineBench-derived kernels: data-mining applications.

pub mod bayesian;
pub mod birch;
pub mod fuzzy_kmeans;
pub mod genenet;
pub mod kmeans;
pub mod plsa;
pub mod scalparc;
pub mod semphy;
pub mod snp;
pub mod svm_rfe;
