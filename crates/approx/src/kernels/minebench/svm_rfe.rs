//! SVM-RFE — support-vector-machine recursive feature elimination.
//!
//! SVM-RFE repeatedly trains a linear classifier and removes the features with the smallest
//! weights. The kernel uses a margin-perceptron style linear trainer (a faithful stand-in
//! for the linear-SVM subproblem) over the synthetic count matrix. Knobs: perforate the
//! training epochs (site 0), perforate the elimination rounds (site 1), sample training
//! rows, reduce precision.

use crate::data::CountMatrix;
use crate::kernel::{ApproxConfig, ApproxKernel, Cost, KernelOutput, KernelRun, Suite};
use crate::techniques::{Perforation, Precision};

/// Perforable site: training epochs of the inner linear classifier.
pub const SITE_EPOCHS: u32 = 0;
/// Perforable site: feature-elimination rounds.
pub const SITE_ELIMINATION: u32 = 1;

/// SVM-RFE feature-ranking kernel.
#[derive(Debug, Clone)]
pub struct SvmRfeKernel {
    data: CountMatrix,
    epochs: usize,
    eliminate_per_round: usize,
    target_features: usize,
}

impl SvmRfeKernel {
    /// Creates a kernel instance with explicit sizes.
    pub fn new(seed: u64, rows: usize, cols: usize) -> Self {
        Self {
            data: CountMatrix::synthetic(seed, rows, cols, 2),
            epochs: 8,
            eliminate_per_round: (cols / 10).max(1),
            target_features: cols / 4,
        }
    }

    /// Small instance for tests and fast exploration.
    pub fn small(seed: u64) -> Self {
        Self::new(seed, 240, 60)
    }

    fn label(&self, row: usize) -> f64 {
        if row.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        }
    }

    fn train_linear(&self, active: &[usize], config: &ApproxConfig, cost: &mut Cost) -> Vec<f64> {
        let rows = self.data.rows;
        let epoch_perf = config.perforation(SITE_EPOCHS);
        let row_sample = Perforation::KeepFraction(config.input_fraction());
        let precision = config.precision;
        let mut weights = vec![0.0f64; active.len()];
        let lr = 0.01;
        for e in 0..self.epochs {
            if !epoch_perf.keeps(e, self.epochs) {
                continue;
            }
            for r in 0..rows {
                if !row_sample.keeps(r, rows) {
                    continue;
                }
                let y = self.label(r);
                let mut score = 0.0;
                for (wi, &f) in active.iter().enumerate() {
                    score += weights[wi] * self.data.at(r, f);
                    cost.ops += 2.0 * precision.op_cost();
                    cost.bytes_touched += 16.0;
                }
                if y * score < 1.0 {
                    for (wi, &f) in active.iter().enumerate() {
                        weights[wi] = precision.quantize(weights[wi] + lr * y * self.data.at(r, f));
                        cost.ops += 3.0 * precision.op_cost();
                    }
                }
            }
        }
        weights
    }

    fn rank_features(&self, config: &ApproxConfig) -> (Vec<u32>, Cost) {
        let cols = self.data.cols;
        let elim_perf = config.perforation(SITE_ELIMINATION);
        let mut cost = Cost::default();
        let mut active: Vec<usize> = (0..cols).collect();
        let mut elimination_order: Vec<u32> = Vec::new();

        let total_rounds = (cols - self.target_features).div_ceil(self.eliminate_per_round);
        let mut round = 0usize;
        while active.len() > self.target_features {
            let weights = if elim_perf.keeps(round, total_rounds) {
                self.train_linear(&active, config, &mut cost)
            } else {
                // Skipped round: eliminate by raw feature variance instead of retraining.
                active
                    .iter()
                    .map(|&f| {
                        let mean: f64 =
                            (0..self.data.rows).map(|r| self.data.at(r, f)).sum::<f64>()
                                / self.data.rows as f64;
                        (0..self.data.rows)
                            .map(|r| (self.data.at(r, f) - mean).powi(2))
                            .sum::<f64>()
                    })
                    .collect()
            };
            round += 1;
            // Eliminate the features with the smallest |weight|.
            let mut order: Vec<usize> = (0..active.len()).collect();
            // `total_cmp`: a NaN weight must sort deterministically instead of
            // panicking mid-elimination; `|NaN|` keeps the positive sign bit, which
            // `total_cmp` orders after every finite weight, so a NaN feature is the
            // *last* candidate for elimination rather than a spurious first.
            order.sort_by(|&a, &b| weights[a].abs().total_cmp(&weights[b].abs()));
            let to_remove: Vec<usize> = order
                .iter()
                .take(
                    self.eliminate_per_round
                        .min(active.len() - self.target_features),
                )
                .map(|&i| active[i])
                .collect();
            for f in to_remove {
                elimination_order.push(f as u32);
                active.retain(|&x| x != f);
            }
            cost.ops += (active.len() as f64) * (active.len() as f64).log2().max(1.0);
        }
        // Output: the surviving feature set (sorted), which is what downstream users of
        // RFE consume.
        let mut survivors: Vec<u32> = active.iter().map(|&f| f as u32).collect();
        survivors.sort_unstable();
        (survivors, cost)
    }
}

impl ApproxKernel for SvmRfeKernel {
    fn name(&self) -> &'static str {
        "svm_rfe"
    }

    fn suite(&self) -> Suite {
        Suite::MineBench
    }

    fn candidate_configs(&self) -> Vec<ApproxConfig> {
        let mut cfgs = Vec::new();
        for p in [2u32, 3, 4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_EPOCHS, Perforation::TruncateBy(p))
                    .with_label(format!("epochs-truncate{p}")),
            );
        }
        for p in [2u32, 3] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_perforation(SITE_ELIMINATION, Perforation::KeepEveryNth(p))
                    .with_label(format!("rounds-keep1of{p}")),
            );
        }
        for f in [0.6, 0.4] {
            cfgs.push(
                ApproxConfig::precise()
                    .with_input_sampling(f)
                    .with_label(format!("rows{:.0}%", f * 100.0)),
            );
        }
        cfgs.push(
            ApproxConfig::precise()
                .with_precision(Precision::F32)
                .with_label("f32"),
        );
        cfgs
    }

    fn run(&self, config: &ApproxConfig) -> KernelRun {
        let (survivors, cost) = self.rank_features(config);
        KernelRun::new(cost, KernelOutput::Labels(survivors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_run_keeps_target_feature_count() {
        let k = SvmRfeKernel::small(2);
        let run = k.run_precise();
        match &run.output {
            KernelOutput::Labels(survivors) => {
                assert_eq!(survivors.len(), 15);
                assert!(survivors.windows(2).all(|w| w[0] < w[1]));
            }
            _ => panic!("unexpected output"),
        }
    }

    #[test]
    fn epoch_truncation_reduces_work() {
        let k = SvmRfeKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_EPOCHS, Perforation::TruncateBy(4)),
        );
        assert!(approx.cost.ops < precise.cost.ops * 0.6);
    }

    #[test]
    fn row_sampling_reduces_bytes() {
        let k = SvmRfeKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(&ApproxConfig::precise().with_input_sampling(0.4));
        assert!(approx.cost.bytes_touched < precise.cost.bytes_touched);
    }

    #[test]
    fn nan_feature_data_does_not_panic_the_elimination_sort() {
        let mut k = SvmRfeKernel::small(2);
        // Poison one feature column with a runtime-style NaN. The variance-fallback
        // elimination rounds (taken under elimination perforation) then rank a NaN
        // weight, which panicked the pre-total_cmp sort.
        let poisoned = 7;
        let cols = k.data.cols;
        for r in 0..k.data.rows {
            k.data.counts[r * cols + poisoned] = -f64::NAN;
        }
        let config = ApproxConfig::precise()
            .with_perforation(SITE_ELIMINATION, Perforation::KeepEveryNth(2));
        let run = k.run(&config);
        match &run.output {
            KernelOutput::Labels(survivors) => {
                assert_eq!(survivors.len(), 15);
                assert!(survivors.windows(2).all(|w| w[0] < w[1]));
            }
            _ => panic!("unexpected output"),
        }
        assert_eq!(k.run(&config).output, k.run(&config).output);
    }

    #[test]
    fn mild_truncation_keeps_feature_set_overlapping() {
        let k = SvmRfeKernel::small(2);
        let precise = k.run_precise();
        let approx = k.run(
            &ApproxConfig::precise().with_perforation(SITE_EPOCHS, Perforation::TruncateBy(2)),
        );
        let inacc = approx.output.inaccuracy_vs(&precise.output);
        assert!(inacc < 80.0, "inaccuracy {inacc}%");
    }
}
