//! Facade crate for the Pliant reproduction.
//!
//! Pliant (HPCA 2019) is a lightweight cloud runtime that co-schedules latency-critical
//! interactive services with approximate-computing applications: when the interactive
//! service's tail-latency QoS is violated, Pliant incrementally switches the co-runners to
//! more aggressive approximate variants and, if necessary, reclaims cores from them — then
//! relaxes both once latency slack returns.
//!
//! This crate re-exports the workspace's components under one roof:
//!
//! * [`approx`] — approximation techniques, the 24 approximate kernels, and the calibrated
//!   application catalog.
//! * [`workloads`] — the NGINX / memcached / MongoDB service models and open-loop
//!   generators.
//! * [`sim`] — the server, interference, queueing, and co-location simulation substrate.
//! * [`explore`] — offline design-space exploration and pareto-frontier variant selection.
//! * [`runtime`] — the Pliant runtime itself (monitor, actuator, controller, policies) and
//!   the scenario/suite/engine experiment API.
//! * [`cluster`] — the multi-node fleet layer: load balancing, batch-job scheduling, and
//!   fleet-level QoS aggregation on top of per-node co-location simulators.
//! * [`telemetry`] — histograms, summaries, and time-series recording.
//!
//! # Quickstart
//!
//! ```
//! use pliant::prelude::*;
//!
//! let scenario = Scenario::builder(ServiceId::MongoDb)
//!     .app(AppId::Raytrace)
//!     .policy(PolicyKind::Pliant)
//!     .horizon_intervals(30)
//!     .build();
//! let outcome = scenario.run();
//! println!("p99/QoS = {:.2}", outcome.tail_latency_ratio);
//! assert!(outcome.intervals > 0);
//! ```
//!
//! Grids of experiments are described with [`prelude::Suite`] and executed with
//! [`prelude::Engine`], which can fan cells out over all cores while still streaming
//! results in deterministic order:
//!
//! ```
//! use pliant::prelude::*;
//!
//! let base = Scenario::builder(ServiceId::Nginx)
//!     .app(AppId::Canneal)
//!     .horizon_intervals(20)
//!     .build();
//! let suite = Suite::new(base)
//!     .sweep_policies([PolicyKind::Precise, PolicyKind::Pliant])
//!     .sweep_loads([0.5, 0.9]);
//! let results = Engine::new().parallel().run_collect(&suite);
//! assert_eq!(results.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pliant_approx as approx;
pub use pliant_cluster as cluster;
pub use pliant_core as runtime;
pub use pliant_explore as explore;
pub use pliant_sim as sim;
pub use pliant_telemetry as telemetry;
pub use pliant_workloads as workloads;

/// Commonly-used items, re-exported for convenience.
pub mod prelude {
    pub use pliant_approx::catalog::{AppId, AppProfile, Catalog};
    pub use pliant_approx::kernel::{ApproxConfig, ApproxKernel};
    pub use pliant_cluster::prelude::*;
    pub use pliant_core::engine::{CellOutcome, Collector, Engine, ExecMode, ResultSink};
    pub use pliant_core::experiment::{
        classify_effort, ColocationOutcome, EffortClass, PhaseQosStats,
    };
    pub use pliant_core::policy::PolicyKind;
    pub use pliant_core::scenario::{Horizon, Scenario, ScenarioBuilder, ScenarioError};
    pub use pliant_core::suite::{SeedMode, Suite, SuiteError, SweepAxis};
    pub use pliant_core::{ControllerConfig, MonitorConfig, PerformanceMonitor, PliantController};
    pub use pliant_explore::{explore_kernel, ExplorationConfig};
    pub use pliant_sim::colocation::{ColocationConfig, ColocationSim};
    pub use pliant_sim::server::{PowerModel, ServerSpec};
    pub use pliant_workloads::profile::{LoadPhase, LoadProfile};
    pub use pliant_workloads::service::{ServiceId, ServiceProfile};
}
